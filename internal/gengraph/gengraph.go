// Package gengraph generates the synthetic topologies used by the
// reproduction. The paper evaluates on the SNAP Facebook social-circles
// graph; that dataset is not redistributable here, so SocialCircles
// synthesizes a community-structured small-world graph matched to its
// published statistics (see PAPER.md). Classic random-graph models are
// provided as baselines and test fixtures.
package gengraph

import (
	"fmt"
	"math"

	"diffusearch/internal/graph"
	"diffusearch/internal/randx"
)

// ErdosRenyi returns G(n, p): every pair connected independently with
// probability p. Runs in O(n + m) expected time using geometric skipping.
func ErdosRenyi(n int, p float64, seed uint64) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gengraph: probability %v out of [0,1]", p))
	}
	b := graph.NewBuilder(n)
	if p == 0 || n < 2 {
		return b.Build()
	}
	r := randx.Derive(seed, "erdos-renyi")
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.Build()
	}
	// Batagelj–Brandes: walk candidate pairs (v, w) with w < v in
	// lexicographic order, skipping ahead by geometrically distributed gaps.
	logq := math.Log(1 - p)
	v, w := 1, -1
	for v < n {
		w += 1 + int(math.Log(1-r.Float64())/logq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(v, w)
		}
	}
	return b.Build()
}

// BarabasiAlbert grows a preferential-attachment graph: start from a clique
// of m0 = m+1 nodes, then attach each new node to m existing nodes chosen
// proportionally to degree.
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if m < 1 {
		panic(fmt.Sprintf("gengraph: BarabasiAlbert needs m >= 1, got %d", m))
	}
	if n < m+1 {
		panic(fmt.Sprintf("gengraph: BarabasiAlbert needs n >= m+1 (%d >= %d)", n, m+1))
	}
	r := randx.Derive(seed, "barabasi-albert")
	b := graph.NewBuilder(n)
	// Repeated-nodes list: each edge endpoint appears once, so sampling a
	// uniform element of the list is degree-proportional sampling.
	repeated := make([]int, 0, 2*m*n)
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	targets := make(map[int]struct{}, m)
	for u := m + 1; u < n; u++ {
		clear(targets)
		for len(targets) < m {
			targets[repeated[r.IntN(len(repeated))]] = struct{}{}
		}
		for v := range targets {
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	return b.Build()
}

// WattsStrogatz builds a small-world graph: a ring lattice where every node
// connects to its k nearest neighbours (k must be even), with each edge
// rewired with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if k%2 != 0 || k < 2 {
		panic(fmt.Sprintf("gengraph: WattsStrogatz needs even k >= 2, got %d", k))
	}
	if k >= n {
		panic(fmt.Sprintf("gengraph: WattsStrogatz needs k < n (%d < %d)", k, n))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("gengraph: beta %v out of [0,1]", beta))
	}
	r := randx.Derive(seed, "watts-strogatz")
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				// Rewire to a uniform non-self, non-duplicate target.
				for tries := 0; tries < 32; tries++ {
					w := r.IntN(n)
					if w != u && !b.HasEdge(u, w) {
						v = w
						break
					}
				}
			}
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// RingLattice returns the unrewired Watts-Strogatz lattice (beta = 0).
func RingLattice(n, k int) *graph.Graph {
	return WattsStrogatz(n, k, 0, 0)
}

// Grid returns the rows×cols 4-neighbour grid graph.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Star returns the star graph: node 0 connected to nodes 1..n-1.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
