package gengraph

import (
	"math"
	"testing"

	"diffusearch/internal/graph"
)

func TestErdosRenyiEdgeCount(t *testing.T) {
	const n = 500
	const p = 0.05
	g := ErdosRenyi(n, p, 1)
	want := p * float64(n*(n-1)) / 2
	got := float64(g.NumEdges())
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("edges = %v, want ~%v", got, want)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 0.1, 7)
	b := ErdosRenyi(100, 0.1, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for u := 0; u < 100; u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatal("same seed must give same adjacency")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("same seed must give same adjacency")
			}
		}
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	if g := ErdosRenyi(50, 0, 1); g.NumEdges() != 0 {
		t.Fatal("p=0 must yield empty graph")
	}
	if g := ErdosRenyi(20, 1, 1); g.NumEdges() != 190 {
		t.Fatalf("p=1 must yield complete graph, got %d edges", g.NumEdges())
	}
}

func TestErdosRenyiInvalidProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	ErdosRenyi(10, 1.5, 1)
}

func TestBarabasiAlbertBasics(t *testing.T) {
	const n, m = 300, 3
	g := BarabasiAlbert(n, m, 2)
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Clique m0 edges + m per additional node (deduped occasionally).
	wantMax := (m+1)*m/2 + (n-m-1)*m
	if g.NumEdges() > wantMax || g.NumEdges() < wantMax*9/10 {
		t.Fatalf("edges = %d, want ~%d", g.NumEdges(), wantMax)
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected")
	}
	// Heavy tail: max degree should far exceed the mean.
	if float64(g.MaxDegree()) < 3*g.AverageDegree() {
		t.Fatalf("max degree %d vs avg %.1f: no hub structure", g.MaxDegree(), g.AverageDegree())
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BarabasiAlbert(10, 0, 1) },
		func() { BarabasiAlbert(3, 3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	g := RingLattice(20, 4)
	for u := 0; u < 20; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("lattice degree %d at node %d", g.Degree(u), u)
		}
	}
	if !g.IsConnected() {
		t.Fatal("lattice must be connected")
	}
	// Clustering of a k=4 ring lattice is 0.5.
	if c := g.AverageClustering(); math.Abs(c-0.5) > 1e-9 {
		t.Fatalf("lattice clustering %v, want 0.5", c)
	}
}

func TestWattsStrogatzRewiringShortensPaths(t *testing.T) {
	lattice := RingLattice(200, 4)
	rewired := WattsStrogatz(200, 4, 0.2, 5)
	if rewired.ApproxDiameter(0) >= lattice.ApproxDiameter(0) {
		t.Fatalf("rewiring should shorten paths: %d vs %d",
			rewired.ApproxDiameter(0), lattice.ApproxDiameter(0))
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for _, f := range []func(){
		func() { WattsStrogatz(10, 3, 0.1, 1) },  // odd k
		func() { WattsStrogatz(4, 4, 0.1, 1) },   // k >= n
		func() { WattsStrogatz(10, 4, -0.1, 1) }, // bad beta
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("edges = %d, want 17", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Fatalf("corner degree %d, center degree %d", g.Degree(0), g.Degree(5))
	}
}

func TestStarAndComplete(t *testing.T) {
	s := Star(6)
	if s.Degree(0) != 5 || s.Degree(3) != 1 || s.NumEdges() != 5 {
		t.Fatal("star structure wrong")
	}
	k := Complete(5)
	if k.NumEdges() != 10 || k.AverageClustering() != 1 {
		t.Fatal("complete graph structure wrong")
	}
}

func TestSocialCirclesMatchesFacebookStats(t *testing.T) {
	g := FacebookLike(42)
	s := graph.Summarize(g, 42)

	if s.Nodes != 4039 {
		t.Fatalf("nodes = %d, want 4039", s.Nodes)
	}
	// Facebook social circles: 88,234 edges → avg degree 43.69. Accept ±20%.
	if s.AvgDegree < 35 || s.AvgDegree > 53 {
		t.Fatalf("avg degree %.2f outside [35,53]", s.AvgDegree)
	}
	// Published average clustering 0.6057. Accept a generous band — the
	// search dynamics need "high clustering", not the exact third decimal.
	if s.Clustering < 0.45 || s.Clustering > 0.75 {
		t.Fatalf("clustering %.3f outside [0.45,0.75]", s.Clustering)
	}
	if s.LargestCompPct < 0.99 {
		t.Fatalf("largest component %.3f, want connected", s.LargestCompPct)
	}
	// Published diameter 8; our double-sweep bound should be in a
	// small-world range.
	if s.ApproxDiameter < 3 || s.ApproxDiameter > 14 {
		t.Fatalf("approx diameter %d outside [3,14]", s.ApproxDiameter)
	}
	// Degree tail: hubs must exist (published max degree 1,045; ours need
	// not match but must exceed several times the mean).
	if float64(s.MaxDegree) < 2*s.AvgDegree {
		t.Fatalf("max degree %d vs avg %.1f: no hubs", s.MaxDegree, s.AvgDegree)
	}
}

func TestSocialCirclesDeterministic(t *testing.T) {
	a := FacebookLike(7)
	b := FacebookLike(7)
	if a.NumEdges() != b.NumEdges() || a.NumNodes() != b.NumNodes() {
		t.Fatal("same seed must reproduce the same graph")
	}
	c := FacebookLike(8)
	if a.NumEdges() == c.NumEdges() {
		t.Log("different seeds produced equal edge counts (possible but unlikely)")
	}
}

func TestSocialCirclesSmall(t *testing.T) {
	g, err := SocialCircles(SocialCirclesParams{
		Nodes:           200,
		TargetAvgDegree: 12,
		MeanCircleSize:  25,
		SizeSigma:       0.4,
		IntraFraction:   0.9,
		MaxIntraProb:    0.7,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("spanning pass must connect the circles")
	}
	avg := g.AverageDegree()
	if avg < 7 || avg > 17 {
		t.Fatalf("avg degree %.2f outside [7,17]", avg)
	}
}

func TestSocialCirclesDistanceTail(t *testing.T) {
	// The locality-biased bridges must produce the long distance tail of
	// real friendship graphs: some node pairs ≥ 6 hops apart (the Facebook
	// graph's diameter is 8) while most pairs stay within ~5 hops
	// (effective diameter 4.7).
	g := FacebookLike(42)
	far := 0
	total := 0
	within5 := 0
	for src := 0; src < g.NumNodes(); src += 500 {
		for _, d := range g.BFSDistances(src) {
			if d < 0 {
				continue
			}
			total++
			if d >= 6 {
				far++
			}
			if d <= 5 {
				within5++
			}
		}
	}
	if far == 0 {
		t.Fatal("no node pairs at distance >= 6: distance tail missing")
	}
	if frac := float64(within5) / float64(total); frac < 0.8 {
		t.Fatalf("only %.2f of pairs within 5 hops; graph no longer small-world", frac)
	}
}

func TestSocialCirclesBridgeLocalityValidation(t *testing.T) {
	p := FacebookLikeParams(1)
	p.BridgeLocality = 1.5
	if _, err := SocialCircles(p); err == nil {
		t.Fatal("bridge locality > 1 must error")
	}
	p.BridgeLocality = -0.1
	if _, err := SocialCircles(p); err == nil {
		t.Fatal("negative bridge locality must error")
	}
}

func TestSocialCirclesPureUniformBridgesStillConnected(t *testing.T) {
	p := FacebookLikeParams(2)
	p.Nodes = 500
	p.BridgeLocality = 0 // all long-range
	g, err := SocialCircles(p)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("spanning pass must keep the graph connected")
	}
}

func TestSocialCirclesValidation(t *testing.T) {
	bad := []SocialCirclesParams{
		{Nodes: 1, TargetAvgDegree: 5, MeanCircleSize: 10, IntraFraction: 0.9, MaxIntraProb: 0.5},
		{Nodes: 100, TargetAvgDegree: 0, MeanCircleSize: 10, IntraFraction: 0.9, MaxIntraProb: 0.5},
		{Nodes: 100, TargetAvgDegree: 5, MeanCircleSize: 1, IntraFraction: 0.9, MaxIntraProb: 0.5},
		{Nodes: 100, TargetAvgDegree: 5, MeanCircleSize: 10, IntraFraction: 0, MaxIntraProb: 0.5},
		{Nodes: 100, TargetAvgDegree: 5, MeanCircleSize: 10, IntraFraction: 0.9, MaxIntraProb: 1.5},
	}
	for i, p := range bad {
		if _, err := SocialCircles(p); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}
