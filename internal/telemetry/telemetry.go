// Package telemetry is the repo-wide metrics layer: a dependency-free
// registry of atomic counters, float gauges, fixed-bucket histograms,
// and sliding quantile windows, with a Prometheus text-format (0.0.4)
// exposition writer behind Registry.WritePrometheus and Registry.Handler.
//
// The design constraints come from the diffusion hot path. Engines call
// into observers once per sweep from their coordinating goroutine, so
// every mutation primitive here is wait-free or near it: Counter.Inc and
// Histogram.Observe are single atomic adds (plus one CAS loop for the
// histogram sum), Gauge.Set is one atomic store, and only Window.Observe
// takes a mutex — and that type is reserved for per-query serving
// latencies, never per-sweep data. Reads are allowed to be slightly torn
// (a histogram snapshot can straddle a concurrent Observe); exposition
// is monitoring, not accounting.
//
// Registration is get-or-create and safe for concurrent use: asking for
// an existing (name, label set) pair returns the same metric, so call
// sites need no setup-order coordination. A name is permanently bound to
// its first kind; re-registering it under another kind is a programmer
// error and panics. For series whose label values are only known at
// scrape time (per-tenant scheduler stats, store gauges), register a
// Producer callback instead of mirroring every update into the registry.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind is the exposition TYPE of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
	kindSummary   kind = "summary"
)

// Registry holds metric families keyed by name. The zero value is not
// usable; call New.
type Registry struct {
	mu        sync.RWMutex
	fams      map[string]*family
	producers []func(*Emitter)
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

type family struct {
	name string
	help string
	kind kind

	mu      sync.Mutex
	metrics map[string]metric // rendered label set -> metric
}

// metric is anything a family can hold; sampleInto appends the rendered
// exposition samples for one label set.
type metric interface {
	sampleInto(dst []sample, name, labels string) []sample
}

type sample struct {
	name   string
	labels string
	value  float64
}

func (r *Registry) family(name, help string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, metrics: make(map[string]metric)}
		r.fams[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

func (f *family) metric(labels string, mk func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.metrics[labels]
	if m == nil {
		m = mk()
		f.metrics[labels] = m
	}
	return m
}

// Counter returns the monotone counter registered under name with the
// given ("key", "value", ...) label pairs, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, kindCounter)
	return f.metric(renderLabels(labels), func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the float gauge registered under name, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, kindGauge)
	return f.metric(renderLabels(labels), func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — the natural fit for state the owner already tracks (pool
// workers, store bytes). fn must be safe to call from the scrape
// goroutine. A second registration under the same name and labels keeps
// the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.family(name, help, kindGauge)
	f.metric(renderLabels(labels), func() metric { return gaugeFunc{fn} })
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it on first use with the given ascending upper bounds (an
// implicit +Inf bucket is always appended). A second registration under
// the same name and labels returns the existing histogram, bounds
// untouched.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	f := r.family(name, help, kindHistogram)
	return f.metric(renderLabels(labels), func() metric { return newHistogram(bounds) }).(*Histogram)
}

// Window returns the sliding quantile window registered under name,
// creating it on first use with capacity size (minimum 1). Windows are
// exposed as Prometheus summaries with 0.5/0.9/0.99 quantile series.
func (r *Registry) Window(name, help string, size int, labels ...string) *Window {
	f := r.family(name, help, kindSummary)
	return f.metric(renderLabels(labels), func() metric { return newWindow(size) }).(*Window)
}

// Producer registers a callback run on every exposition pass to emit
// dynamically labeled series. Producers must not emit a name already
// owned by a directly registered family under a different kind.
func (r *Registry) Producer(fn func(*Emitter)) {
	r.mu.Lock()
	r.producers = append(r.producers, fn)
	r.mu.Unlock()
}

// Counter is a monotonically increasing counter. The zero value is
// ready to use, but obtain counters from Registry.Counter so they are
// exposed.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) sampleInto(dst []sample, name, labels string) []sample {
	return append(dst, sample{name, labels, float64(c.v.Load())})
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; contended adders all make progress).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) sampleInto(dst []sample, name, labels string) []sample {
	return append(dst, sample{name, labels, g.Value()})
}

type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) sampleInto(dst []sample, name, labels string) []sample {
	return append(dst, sample{name, labels, g.fn()})
}

// Histogram counts observations into fixed ascending buckets (upper
// bounds are inclusive, Prometheus le semantics) plus an implicit +Inf
// bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records v: one atomic add into its bucket plus a CAS loop for
// the running sum.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations. The sum over buckets
// is not snapshotted atomically; a read racing Observe can be off by the
// in-flight observation.
func (h *Histogram) Count() uint64 {
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) sampleInto(dst []sample, name, labels string) []sample {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		dst = append(dst, sample{name + "_bucket", withLabel(labels, "le", formatFloat(b)), float64(cum)})
	}
	cum += h.counts[len(h.bounds)].Load()
	dst = append(dst, sample{name + "_bucket", withLabel(labels, "le", "+Inf"), float64(cum)})
	dst = append(dst, sample{name + "_sum", labels, h.Sum()})
	dst = append(dst, sample{name + "_count", labels, float64(cum)})
	return dst
}

// Window keeps the last size observations and exposes them as a
// Prometheus summary (0.5/0.9/0.99 quantiles over the window, plus
// lifetime _sum and _count). Observe takes a mutex; use it for per-query
// paths, not per-sweep ones.
type Window struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	full  bool
	count uint64
	sum   float64
}

func newWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{buf: make([]float64, size)}
}

// Observe records v, evicting the oldest sample once the window is full.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	w.buf[w.next] = v
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
	w.count++
	w.sum += v
	w.mu.Unlock()
}

// Count returns the lifetime observation count.
func (w *Window) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Quantile returns the q-quantile (0 < q <= 1) over the current window,
// or NaN when the window is empty.
func (w *Window) Quantile(q float64) float64 {
	vals := w.snapshot()
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	return vals[quantIndex(len(vals), q)]
}

func (w *Window) snapshot() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	return append([]float64(nil), w.buf[:n]...)
}

func (w *Window) sampleInto(dst []sample, name, labels string) []sample {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	vals := append([]float64(nil), w.buf[:n]...)
	count, sum := w.count, w.sum
	w.mu.Unlock()
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := math.NaN()
		if len(vals) > 0 {
			v = vals[quantIndex(len(vals), q)]
		}
		dst = append(dst, sample{name, withLabel(labels, "quantile", formatFloat(q)), v})
	}
	dst = append(dst, sample{name + "_sum", labels, sum})
	dst = append(dst, sample{name + "_count", labels, float64(count)})
	return dst
}

func quantIndex(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// ExpBuckets returns n ascending upper bounds start, start·factor,
// start·factor², ... — the usual shape for latencies and frontier sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// LinearBuckets returns n ascending upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start + float64(i)*width
	}
	return bs
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels turns ("k","v",...) pairs into a canonical {k="v",...}
// string, sorted by key so the same logical label set always maps to the
// same metric.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range ps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(labelEscaper.Replace(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// withLabel appends one extra label (le, quantile) to an already
// rendered label set.
func withLabel(labels, k, v string) string {
	extra := k + `="` + labelEscaper.Replace(v) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
