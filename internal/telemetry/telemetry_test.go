package telemetry

import (
	"bytes"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryHammer drives every metric kind from many goroutines while
// other goroutines scrape — the -race CI step turns any unsynchronized
// access into a failure, and the final totals check that no increment
// was lost.
func TestRegistryHammer(t *testing.T) {
	r := New()
	const (
		workers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Registration races registration: every goroutine asks for the
			// same families and must get the same metrics back.
			c := r.Counter("hammer_ops_total", "ops")
			g := r.Gauge("hammer_level", "level", "shard", "0")
			h := r.Histogram("hammer_size", "sizes", ExpBuckets(1, 2, 8))
			win := r.Window("hammer_wait", "waits", 256)
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 300))
				win.Observe(float64(i))
			}
		}(w)
	}
	// Concurrent scrapes and a racing producer registration.
	r.Producer(func(e *Emitter) {
		e.Gauge("hammer_dynamic", "dyn", 1, "tenant", "a")
	})
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const total = workers * perG
	if got := r.Counter("hammer_ops_total", "ops").Value(); got != total {
		t.Fatalf("counter lost increments: %d, want %d", got, total)
	}
	if got := r.Gauge("hammer_level", "level", "shard", "0").Value(); got != total {
		t.Fatalf("gauge lost adds: %g, want %d", got, total)
	}
	h := r.Histogram("hammer_size", "sizes", nil)
	if got := h.Count(); got != total {
		t.Fatalf("histogram lost observations: %d, want %d", got, total)
	}
	if win := r.Window("hammer_wait", "waits", 256); win.Count() != total {
		t.Fatalf("window lost observations: %d, want %d", win.Count(), total)
	}
}

// TestWritePrometheusGolden pins the exposition encoding: family
// ordering, label rendering, histogram cumulative buckets, summary
// quantiles, and producer merging are all load-bearing for scrapers.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("ds_queries_total", "Queries served.", "tenant", "local").Add(7)
	r.Gauge("ds_store_bytes", "Store footprint.").Set(4096)
	h := r.Histogram("ds_latency_seconds", "Query latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	w := r.Window("ds_wait_seconds", "Queue wait.", 8)
	for i := 1; i <= 4; i++ {
		w.Observe(float64(i))
	}
	r.GaugeFunc("ds_workers", "Pool size.", func() float64 { return 3 })
	r.Producer(func(e *Emitter) {
		e.Gauge("ds_coverage", "Segment coverage.", 0.25, "tenant", "local")
		e.Counter("ds_queries_total", "Queries served.", 2, "tenant", "beta")
	})

	const want = `# HELP ds_coverage Segment coverage.
# TYPE ds_coverage gauge
ds_coverage{tenant="local"} 0.25
# HELP ds_latency_seconds Query latency.
# TYPE ds_latency_seconds histogram
ds_latency_seconds_bucket{le="0.01"} 1
ds_latency_seconds_bucket{le="0.1"} 2
ds_latency_seconds_bucket{le="1"} 3
ds_latency_seconds_bucket{le="+Inf"} 4
ds_latency_seconds_sum 5.555
ds_latency_seconds_count 4
# HELP ds_queries_total Queries served.
# TYPE ds_queries_total counter
ds_queries_total{tenant="local"} 7
ds_queries_total{tenant="beta"} 2
# HELP ds_store_bytes Store footprint.
# TYPE ds_store_bytes gauge
ds_store_bytes 4096
# HELP ds_wait_seconds Queue wait.
# TYPE ds_wait_seconds summary
ds_wait_seconds{quantile="0.5"} 2
ds_wait_seconds{quantile="0.9"} 4
ds_wait_seconds{quantile="0.99"} 4
ds_wait_seconds_sum 10
ds_wait_seconds_count 4
# HELP ds_workers Pool size.
# TYPE ds_workers gauge
ds_workers 3
`
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Same bytes through the HTTP handler, with the versioned content type.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	if rec.Body.String() != want {
		t.Fatal("handler body differs from WritePrometheus output")
	}
}

func TestLabelEscapingAndDeterminism(t *testing.T) {
	r := New()
	r.Counter("esc_total", "esc", "path", "a\\b\"c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped label missing:\n%s", buf.String())
	}
	// Labels given in any key order address the same metric.
	r2 := New()
	r2.Counter("m", "m", "a", "1", "b", "2").Inc()
	r2.Counter("m", "m", "b", "2", "a", "1").Inc()
	if got := r2.Counter("m", "m", "a", "1", "b", "2").Value(); got != 2 {
		t.Fatalf("label order split the metric: %d", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 11} {
		h.Observe(v)
	}
	// le="1" holds {0.5, 1}; le="10" adds {1.0000001, 10}; +Inf adds {11}.
	var dst []sample
	dst = h.sampleInto(dst, "h", "")
	if dst[0].value != 2 || dst[1].value != 4 || dst[2].value != 5 {
		t.Fatalf("cumulative buckets wrong: %+v", dst[:3])
	}
	if dst[3].name != "h_sum" || math.Abs(dst[3].value-23.5000001) > 1e-9 {
		t.Fatalf("sum sample wrong: %+v", dst[3])
	}
}

func TestWindowQuantiles(t *testing.T) {
	w := newWindow(4)
	if !math.IsNaN(w.Quantile(0.5)) {
		t.Fatal("empty window should yield NaN")
	}
	for i := 1; i <= 6; i++ { // 5 and 6 evict 1 and 2
		w.Observe(float64(i))
	}
	if q := w.Quantile(0.5); q != 4 {
		t.Fatalf("p50 over {3,4,5,6} = %g, want 4", q)
	}
	if q := w.Quantile(1); q != 6 {
		t.Fatalf("max = %g, want 6", q)
	}
	if w.Count() != 6 {
		t.Fatalf("lifetime count %d, want 6", w.Count())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("dual", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dual", "second")
}
