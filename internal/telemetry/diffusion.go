package telemetry

import "diffusearch/internal/diffuse"

// DiffusionMetrics adapts a Registry to diffuse.Observer: every observed
// sweep feeds the sweep/message counters and the convergence-profile
// histograms (frontier size, active columns, residual mass). One
// instance is safe to share across every engine run in the process —
// all sinks are atomic — which is exactly how peerd wires it: a single
// observer in the shared DiffusionRequest covers every tenant.
type DiffusionMetrics struct {
	sweeps   *Counter
	messages *Counter
	cross    *Counter
	frontier *Histogram
	columns  *Histogram
	residual *Histogram
}

// NewDiffusionMetrics registers the diffusion metric families on r and
// returns the observer feeding them.
func NewDiffusionMetrics(r *Registry) *DiffusionMetrics {
	return &DiffusionMetrics{
		sweeps: r.Counter("diffusearch_diffusion_sweeps_total",
			"Diffusion sweeps/rounds executed, across all engine runs."),
		messages: r.Counter("diffusearch_diffusion_messages_total",
			"Embedding messages exchanged, summed per sweep."),
		cross: r.Counter("diffusearch_diffusion_cross_messages_total",
			"Cross-shard subset of the embedding messages (sharded engines only)."),
		frontier: r.Histogram("diffusearch_diffusion_frontier_nodes",
			"Active-frontier size per sweep.", ExpBuckets(1, 4, 10)),
		columns: r.Histogram("diffusearch_diffusion_active_columns",
			"Unretired signal columns per sweep.", ExpBuckets(1, 2, 9)),
		residual: r.Histogram("diffusearch_diffusion_residual_l1",
			"Residual L1 mass per sweep.", ExpBuckets(1e-9, 10, 12)),
	}
}

// ObserveSweep implements diffuse.Observer.
func (m *DiffusionMetrics) ObserveSweep(s diffuse.SweepStat) {
	m.sweeps.Inc()
	if s.Messages > 0 {
		m.messages.Add(uint64(s.Messages))
	}
	if s.CrossMessages > 0 {
		m.cross.Add(uint64(s.CrossMessages))
	}
	m.frontier.Observe(float64(s.ActiveNodes))
	m.columns.Observe(float64(s.ActiveColumns))
	m.residual.Observe(s.ResidualL1)
}
