// Prometheus text-format (0.0.4) exposition: the registry renders every
// family as # HELP / # TYPE header lines followed by its samples.
// Families are sorted by name and each family's metrics by label set, so
// output is deterministic for fixed values (the golden test relies on
// this); histogram buckets keep their natural ascending order.

package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

type outFamily struct {
	name    string
	help    string
	kind    kind
	samples []sample
}

// Emitter collects producer-emitted samples during one exposition pass.
// All methods take ("key", "value", ...) label pairs like the registry.
type Emitter struct {
	fams map[string]*outFamily
}

func (e *Emitter) emit(name, help string, k kind, s sample) {
	f := e.fams[name]
	if f == nil {
		f = &outFamily{name: name, help: help, kind: k}
		e.fams[name] = f
	}
	f.samples = append(f.samples, s)
}

// Counter emits one counter sample.
func (e *Emitter) Counter(name, help string, v float64, labels ...string) {
	e.emit(name, help, kindCounter, sample{name, renderLabels(labels), v})
}

// Gauge emits one gauge sample.
func (e *Emitter) Gauge(name, help string, v float64, labels ...string) {
	e.emit(name, help, kindGauge, sample{name, renderLabels(labels), v})
}

// Quantile emits one summary sample carrying a quantile label — call it
// once per quantile of a precomputed digest (serve's wait windows).
func (e *Emitter) Quantile(name, help string, q, v float64, labels ...string) {
	e.emit(name, help, kindSummary, sample{name, withLabel(renderLabels(labels), "quantile", formatFloat(q)), v})
}

// WritePrometheus writes every registered family (and every producer's
// output) in Prometheus text exposition format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	producers := append([]func(*Emitter){}, r.producers...)
	r.mu.RUnlock()

	out := make(map[string]*outFamily, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.metrics))
		for k := range f.metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ms := make([]metric, len(keys))
		for i, k := range keys {
			ms[i] = f.metrics[k]
		}
		f.mu.Unlock()
		of := &outFamily{name: f.name, help: f.help, kind: f.kind}
		for i, k := range keys {
			of.samples = ms[i].sampleInto(of.samples, f.name, k)
		}
		out[f.name] = of
	}
	if len(producers) > 0 {
		e := &Emitter{fams: make(map[string]*outFamily)}
		for _, fn := range producers {
			fn(e)
		}
		for name, pf := range e.fams {
			sort.SliceStable(pf.samples, func(i, j int) bool { return pf.samples[i].labels < pf.samples[j].labels })
			if of := out[name]; of != nil && of.kind == pf.kind {
				of.samples = append(of.samples, pf.samples...)
				continue
			}
			out[name] = pf
		}
	}

	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		of := out[name]
		help := strings.ReplaceAll(of.help, "\n", " ")
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, of.kind); err != nil {
			return err
		}
		for _, s := range of.samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatFloat(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry as
// text/plain; version=0.0.4 — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
