package diffusearch_test

// Engine-equivalence acceptance test: on the quarter-scale environment
// (~1,000 nodes) the residual-driven Parallel engine must converge to the
// same PPR fixed point as the deterministic Asynchronous reference within
// 1e-4 max-norm, while spending strictly fewer messages.

import (
	"testing"

	"diffusearch"
	"diffusearch/internal/graph"
	"diffusearch/internal/vecmath"
)

// quarterEnv shares the quarter-scale environment cached by bench_test.go.
func quarterEnv(t *testing.T) *diffusearch.Environment {
	t.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = diffusearch.NewScaledEnvironment(42, 0.25)
	})
	if benchErr != nil {
		t.Fatal(benchErr)
	}
	return benchEnv
}

func TestParallelMatchesAsynchronousQuarterScale(t *testing.T) {
	env := quarterEnv(t)
	net := diffusearch.NewNetwork(env.Graph, env.Bench.Vocabulary())
	r := diffusearch.NewRand(7)
	pair := env.Bench.SamplePair(r)
	docs := append([]diffusearch.DocID{pair.Gold}, env.Bench.SamplePool(r, 499)...)
	if err := net.PlaceDocuments(docs, diffusearch.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
		t.Fatal(err)
	}
	if err := net.ComputePersonalization(); err != nil {
		t.Fatal(err)
	}

	stAsync, err := net.Diffuse(diffusearch.EngineAsynchronous, diffusearch.DiffusionParams{Alpha: 0.5, Tol: 1e-6}, 42)
	if err != nil {
		t.Fatal(err)
	}
	n := env.Graph.NumNodes()
	ref := vecmath.NewMatrix(n, env.Bench.Vocabulary().Dim())
	for u := 0; u < n; u++ {
		e, err := net.NodeEmbedding(u)
		if err != nil {
			t.Fatal(err)
		}
		ref.SetRow(u, e)
	}

	stPar, err := net.Diffuse(diffusearch.EngineParallel, diffusearch.DiffusionParams{Alpha: 0.5, Tol: 1e-6}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !stAsync.Converged || !stPar.Converged {
		t.Fatalf("both engines must converge: async %+v parallel %+v", stAsync, stPar)
	}
	var maxDiff float64
	for u := 0; u < n; u++ {
		e, err := net.NodeEmbedding(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := vecmath.MaxAbsDiff(e, ref.Row(u)); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Fatalf("parallel differs from asynchronous by %g (acceptance bar 1e-4)", maxDiff)
	}
	if stPar.Messages >= stAsync.Messages {
		t.Fatalf("parallel messages %d not below asynchronous %d", stPar.Messages, stAsync.Messages)
	}
	t.Logf("max|Δ| = %.3g; messages async=%d parallel=%d (%.1f%% of reference)",
		maxDiff, stAsync.Messages, stPar.Messages, 100*float64(stPar.Messages)/float64(stAsync.Messages))
}

func TestParallelEngineDeterministicAtScale(t *testing.T) {
	// The block-Jacobi frontier makes Parallel schedule-independent: two
	// runs with different worker counts must agree bit for bit.
	env := quarterEnv(t)
	tr := graph.NewTransition(env.Graph, graph.ColumnStochastic)
	r := diffusearch.NewRand(11)
	e0 := vecmath.NewMatrix(env.Graph.NumNodes(), 8)
	for u := 0; u < env.Graph.NumNodes(); u++ {
		e0.SetRow(u, vecmath.RandomGaussian(r, 8, 1))
	}
	run := func(workers int) *vecmath.Matrix {
		out, _, err := diffusearch.RunDiffusion(diffusearch.EngineParallel, tr, e0,
			diffusearch.DiffusionParams{Alpha: 0.3, Workers: workers}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if vecmath.MaxAbsDiffMatrix(run(1), run(6)) != 0 {
		t.Fatal("parallel engine must be deterministic across worker counts")
	}
}
