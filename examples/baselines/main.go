// Baselines: compare the paper's PPR-guided walk against the classic
// unstructured-search baselines (§II-A) — blind random walks and
// TTL-limited flooding — under identical placements, reporting hit rate
// and message cost.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"

	"diffusearch"
	"diffusearch/internal/core"
	"diffusearch/internal/expt"
)

func main() {
	const seed = 13

	env, err := diffusearch.NewScaledEnvironment(seed, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges; M=100 documents, α=0.5, TTL=50\n\n",
		env.Graph.NumNodes(), env.Graph.NumEdges())

	rows, err := expt.ComparePolicies(env, expt.CompareConfig{
		M: 100, Alpha: 0.5, TTL: 50, Iterations: 40, QueriesPerIter: 5, Seed: seed,
		Variants: []expt.Variant{
			{Name: "ppr-greedy", Policy: core.GreedyPolicy{Fanout: 1}},
			{Name: "ppr-greedy-x4", Policy: core.GreedyPolicy{Fanout: 4}},
			{Name: "epsilon-greedy", Policy: core.EpsilonGreedyPolicy{Fanout: 1, Epsilon: 0.2}},
			{Name: "random-walk", Policy: core.RandomPolicy{Fanout: 1}},
			{Name: "flooding-ttl2", Policy: core.FloodingPolicy{}, TTL: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(expt.FormatCompare(rows))
	fmt.Println("The diffusion-guided walk beats the blind walk at equal message cost;")
	fmt.Println("flooding reaches everything nearby but pays orders of magnitude more")
	fmt.Println("messages — the §II-A scalability argument for informed search.")
}
