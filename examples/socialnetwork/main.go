// Social-network search: the paper's motivating scenario. A Facebook-like
// social overlay where every user stores a handful of documents; we sweep
// the teleport probability α and measure how hit accuracy depends on the
// distance between the querying user and the user holding the relevant
// document (a miniature Fig. 3).
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"diffusearch"
	"diffusearch/internal/expt"
)

func main() {
	const seed = 7

	// A mid-sized social topology (~1,000 users) keeps the demo quick; the
	// full 4,039-node evaluation lives in cmd/experiments.
	env, err := diffusearch.NewScaledEnvironment(seed, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social overlay: %d users, %d friendships\n", env.Graph.NumNodes(), env.Graph.NumEdges())
	fmt.Printf("workload: %d query/gold pairs mined at cosine ≥ 0.6, %d-word pool\n\n",
		len(env.Bench.Pairs), len(env.Bench.Pool))

	for _, m := range []int{10, 1000} {
		res, err := expt.AccuracyByDistance(env, expt.AccuracyConfig{
			M:           m,
			Alphas:      []float64{0.1, 0.5, 0.9},
			MaxDistance: 6,
			TTL:         50,
			Iterations:  30,
			Seed:        seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hit accuracy vs distance with M=%d documents in the network:\n", m)
		fmt.Println(expt.FormatAccuracy(res))
	}
	fmt.Println("Reading the tables: accuracy is ≈1 when the document sits within ~2")
	fmt.Println("friendship hops and declines sharply farther away — and the decline")
	fmt.Println("steepens as more documents pollute the diffused summaries (§V-C).")
}
