// Quickstart: build a small P2P network, place documents, diffuse node
// embeddings with Personalized PageRank, and run one embedding-guided
// search walk.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"diffusearch"
)

func main() {
	const seed = 42

	// 1. A scaled-down evaluation setting: a social-style topology plus a
	//    synthetic embedding vocabulary with mined query/gold pairs.
	env, err := diffusearch.NewScaledEnvironment(seed, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	g := env.Graph
	fmt.Printf("topology: %d nodes, %d edges (avg degree %.1f)\n",
		g.NumNodes(), g.NumEdges(), g.AverageDegree())

	// 2. Place one gold document and 29 irrelevant ones uniformly (the
	//    paper's Fig. 2 pipeline).
	net := diffusearch.NewNetwork(g, env.Bench.Vocabulary())
	r := diffusearch.NewRand(seed)
	pair := env.Bench.SamplePair(r)
	docs := append([]diffusearch.DocID{pair.Gold}, env.Bench.SamplePool(r, 29)...)
	if err := net.PlaceDocuments(docs, diffusearch.UniformHosts(r, len(docs), g.NumNodes())); err != nil {
		log.Fatal(err)
	}

	// 3. Summarize collections into personalization vectors (eq. 3) and
	//    diffuse them with one DiffusionRequest (§IV-B). The zero-value
	//    engine is the residual-driven parallel engine; set Engine to
	//    diffusearch.EngineAsynchronous or EngineSync for the references.
	if err := net.ComputePersonalization(); err != nil {
		log.Fatal(err)
	}
	st, err := net.Run(diffusearch.DiffusionRequest{Alpha: 0.5, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diffusion: converged after %d sweeps, %d embedding exchanges\n", st.Sweeps, st.Messages)

	// 4. Search: a biased walk guided by the diffused embeddings (Fig. 1).
	goldHost := net.HostOf(pair.Gold)
	origins := g.NodesAtDistance(goldHost, 2)
	origin := goldHost
	if len(origins[2]) > 0 {
		origin = origins[2][0] // start two hops from the gold document
	}
	query := env.Bench.Vocabulary().Vector(pair.Query)
	out, err := net.RunQuery(origin, query, pair.Gold,
		diffusearch.QueryConfig{TTL: 50, K: 3, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query from node %d (gold at node %d):\n", origin, goldHost)
	if out.Found {
		fmt.Printf("  found the gold document after %d hops (visited %d nodes, %d messages)\n",
			out.HopsToGold, out.Visited, out.Messages)
	} else {
		fmt.Printf("  walk expired without finding the gold (visited %d nodes)\n", out.Visited)
	}
	for i, res := range out.Results {
		fmt.Printf("  %d. %s (score %.4f)\n", i+1, env.Bench.Vocabulary().Word(res.Doc), res.Score)
	}

	// 5. Batch scoring: ScoreBatch diffuses one multi-column relevance
	//    signal for a whole query batch (here the same query three times,
	//    standing in for three concurrent users) and returns per-query
	//    score slices that walks can share via QueryConfig.Scores.
	scores, bst, err := net.ScoreBatch([][]float64{query, query, query},
		diffusearch.DiffusionRequest{Alpha: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch scoring: %d queries in %d rounds, %.0f messages per query\n",
		len(scores), bst.Sweeps, float64(bst.Messages)/float64(len(scores)))
	shared, err := net.RunQuery(origin, query, pair.Gold,
		diffusearch.QueryConfig{TTL: 50, K: 3, Seed: seed, Scores: scores[0]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch-scored walk found gold: %v\n", shared.Found)

	// 6. Serving under load: a Scheduler assembles batches from live
	//    traffic — concurrent Submit calls coalesce into one diffusion
	//    under the MaxWait latency budget, and repeats hit the LRU cache.
	//    (Here three goroutines stand in for three concurrent clients.)
	sched, err := diffusearch.NewScheduler(net, diffusearch.ServeConfig{
		Request: diffusearch.DiffusionRequest{Alpha: 0.5},
		MaxWait: 2 * time.Millisecond,
		Cache:   64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sched.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sched.Submit(context.Background(), query); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	sst := sched.Stats()
	fmt.Printf("scheduler: %d queries served by %d diffusion(s), cache hit rate %.2f\n",
		sst.Completed+sst.CacheHits, sst.Batches, sst.CacheHitRate())

	// 7. Multi-tenant sharding: one process serving two tenant graphs.
	//    Each tenant's overlay is partitioned into Transition shards that
	//    diffuse concurrently on one shared worker pool (same scores as a
	//    single CSR, within 1e-9), and a MultiScheduler gives every tenant
	//    its own coalescing scheduler and cache.
	pool := diffusearch.NewDiffusionPool(0)
	defer pool.Close()
	multi := diffusearch.NewMultiScheduler()
	defer multi.Close()
	tenants := map[string]uint64{"alpha": 7, "beta": 8}
	tenantQueries := make(map[string][]float64)
	for name, tseed := range tenants {
		tenv, err := diffusearch.NewScaledEnvironment(tseed, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		tnet := diffusearch.NewSharded(tenv.Graph, tenv.Bench.Vocabulary(),
			diffusearch.ShardConfig{Shards: 2, Pool: pool})
		tr := diffusearch.NewRand(tseed)
		tpair := tenv.Bench.SamplePair(tr)
		tdocs := append([]diffusearch.DocID{tpair.Gold}, tenv.Bench.SamplePool(tr, 29)...)
		if err := tnet.PlaceDocuments(tdocs, diffusearch.UniformHosts(tr, len(tdocs), tenv.Graph.NumNodes())); err != nil {
			log.Fatal(err)
		}
		if err := tnet.ComputePersonalization(); err != nil {
			log.Fatal(err)
		}
		if _, err := multi.Register(name, tnet, diffusearch.ServeConfig{
			Request: diffusearch.DiffusionRequest{Alpha: 0.5},
			Cache:   64,
		}); err != nil {
			log.Fatal(err)
		}
		tenantQueries[name] = tenv.Bench.Vocabulary().Vector(tpair.Query)
	}
	for _, name := range multi.Tenants() {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := multi.Submit(context.Background(), name, tenantQueries[name]); err != nil {
				log.Fatal(err)
			}
		}(name)
	}
	wg.Wait()
	for name, st := range multi.Stats() {
		fmt.Printf("tenant %s: %d served, %d diffusion(s), queue max %d\n",
			name, st.Completed+st.CacheHits, st.Batches, st.QueueMax)
	}

	// 8. Priority classes: one Bulk prewarm rides along with Interactive
	//    queries. The Bulk submission volunteers to wait (it wants width,
	//    not latency); the Interactive queries jump the coalesce window —
	//    with a deadline, a query the scheduler cannot dispatch in time is
	//    shed (ErrDeadlineMissed), never scored late.
	prewarm := env.Bench.Vocabulary().Vector(env.Bench.SamplePair(r).Query)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := sched.SubmitWith(context.Background(), prewarm,
			diffusearch.SubmitOpts{Class: diffusearch.ClassBulk}); err != nil {
			log.Fatal(err)
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := sched.SubmitWith(context.Background(), query, diffusearch.SubmitOpts{
				Class:    diffusearch.ClassInteractive,
				Deadline: time.Now().Add(5 * time.Second),
			})
			if err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	pst := sched.Stats()
	fmt.Printf("priority: interactive wait p99 %v, bulk wait p99 %v, %d deadline miss(es)\n",
		pst.ClassWait[diffusearch.ClassInteractive].P99,
		pst.ClassWait[diffusearch.ClassBulk].P99, pst.DeadlineMissed)

	// 9. Walk-index serving: attach a precomputed PPR segment store to the
	//    network and build it offline — queries then assemble cached
	//    segments and finish only the residual, with scores within the
	//    request tolerance of the plain CSR backend (peerd: -scorer
	//    walkindex). SetScorer(nil) would restore the CSR default.
	indexed, err := diffusearch.AttachWalkIndex(net, diffusearch.WalkIndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := indexed.Backend().Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v (coverage %.2f)\n", indexed.Backend(), indexed.Backend().Coverage())
	warm, _, err := net.ScoreBatch([][]float64{query}, diffusearch.DiffusionRequest{Alpha: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for u, v := range warm[0] {
		if d := v - scores[0][u]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("walk-index scores match CSR within %.1e\n", maxDiff)

	// 10. Certified top-k: attach the bidirectional ranker (reverse-push
	//     tables from the document hosts) and ask for the k best hosts via
	//     DiffusionRequest.TopK — the forward diffusion stops at the first
	//     sweep whose k/(k+1) score gap is provably final. The result set
	//     always equals the full-vector top-k: without a certificate the
	//     backend falls back to full convergence, never an approximation.
	net.SetScorer(nil) // rank on the plain CSR backend
	if _, err := diffusearch.AttachTopK(net, diffusearch.TopKConfig{Alpha: 0.5}); err != nil {
		log.Fatal(err)
	}
	ranked, rst, err := net.ScoreBatchTopK([][]float64{query},
		diffusearch.DiffusionRequest{Alpha: 0.5, TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-3 document hosts (certified=%v, %d sweeps vs %d full):",
		ranked[0].Certified, rst.Sweeps, st.Sweeps)
	for i, id := range ranked[0].IDs {
		fmt.Printf(" %d(%.4f)", id, ranked[0].Scores[i])
	}
	fmt.Println()

	// 11. Observability: one MetricsRegistry collects every layer — the
	//     stock diffusion observer turns per-sweep convergence stats into
	//     histograms (observed runs stay bit-identical to bare ones), and
	//     a scheduler trace hook counts resolutions by path — and serves
	//     it the way `peerd -admin` does: /metrics in Prometheus text
	//     plus /statusz as a JSON status snapshot.
	reg := diffusearch.NewMetricsRegistry()
	obsReq := diffusearch.DiffusionRequest{
		Alpha: 0.5, Observer: diffusearch.NewDiffusionMetrics(reg),
	}
	counters := make(map[diffusearch.TracePath]interface{ Inc() })
	for _, p := range diffusearch.TracePaths {
		counters[p] = reg.Counter("quickstart_queries_total",
			"Resolved queries by path.", "path", string(p))
	}
	obsSched, err := diffusearch.NewScheduler(net, diffusearch.ServeConfig{
		Request: obsReq, Cache: 8,
		OnTrace: func(t diffusearch.ServeTrace) { counters[t.Path].Inc() },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer obsSched.Close()
	for i := 0; i < 2; i++ { // the second submit is a cache hit
		if _, err := obsSched.Submit(context.Background(), query); err != nil {
			log.Fatal(err)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]diffusearch.ServeStats{
			"local": obsSched.Stats(),
		})
	})
	admin := httptest.NewServer(mux)
	defer admin.Close()

	resp, err := http.Get(admin.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	exposition, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(exposition), "\n") {
		if strings.HasPrefix(line, "diffusearch_diffusion_sweeps_total") ||
			strings.HasPrefix(line, `quickstart_queries_total{path="cache_hit"`) ||
			strings.HasPrefix(line, `quickstart_queries_total{path="scored"`) {
			fmt.Println("  " + line)
		}
	}
	resp, err = http.Get(admin.URL + "/statusz")
	if err != nil {
		log.Fatal(err)
	}
	var status map[string]diffusearch.ServeStats
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statusz: local tenant resolved %d submissions (%d from cache)\n",
		status["local"].Completed+status["local"].CacheHits, status["local"].CacheHits)

	// 12. Routed fan-out: each peer gossips a compact bloom summary of its
	//     document holdings piggybacked on the embed messages, and a
	//     forwarded query carries doc-term keys mined from its embedding.
	//     Every hop consults its cached neighbour summaries — steering to
	//     the best-scoring filter hit, falling back to plain greedy when
	//     every candidate misses, and answering early when the walk
	//     already tracks its primary key document and no fresh filter can
	//     extend it. The deterministic protocol harness below runs the
	//     exact peer logic without goroutines or clocks, so routed vs
	//     unrouted costs compare on identical walks.
	adj := make([][]diffusearch.NodeID, g.NumNodes())
	for u := range adj {
		adj[u] = g.Neighbors(u)
	}
	placement := make(map[diffusearch.NodeID][]diffusearch.DocID, len(docs))
	for _, d := range docs {
		placement[net.HostOf(d)] = append(placement[net.HostOf(d)], d)
	}
	sim, err := diffusearch.NewSimNetwork(diffusearch.SimNetworkConfig{
		Neighbors: adj, Vocab: env.Bench.Vocabulary(), Docs: placement,
		Alpha: 0.5, Seed: seed,
		Filter: diffusearch.PeerFilterConfig{Bits: 1024, Hashes: 4, QueryKeys: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	rounds, converged := sim.Converge(300)
	if !converged {
		log.Fatal("gossip did not quiesce")
	}
	// The workload's query words are never placed as documents, so drop
	// the query's own word (trivially its nearest neighbour) from the
	// mined keys before routing.
	rawKeys := diffusearch.MineQueryKeys(env.Bench.Vocabulary(), query, diffusearch.CosineSim, 9)
	keys := make([]diffusearch.DocID, 0, 8)
	for _, d := range rawKeys {
		if d != pair.Query {
			keys = append(keys, d)
		}
	}
	unrouted := sim.RunQuery(origin, query, nil, 50, 3)
	routed := sim.RunQuery(origin, query, keys, 50, 3)
	fmt.Printf("routed fan-out: filters gossiped in %d rounds; unrouted walk %d messages, routed %d (%d filter hits, early stop %v)\n",
		rounds, unrouted.Messages, routed.Messages, routed.FilterHits, routed.EarlyStop)
}
