// Live peers: a fully decentralized run with one goroutine per peer
// exchanging real protocol messages (embedding gossip, query, response)
// over an in-process transport fabric — the deployable runtime rather than
// the simulation. The same binary logic runs over TCP via cmd/peerd.
//
//	go run ./examples/livepeers
package main

import (
	"fmt"
	"log"
	"time"

	"diffusearch"
	"diffusearch/internal/gengraph"
	"diffusearch/internal/graph"
	"diffusearch/internal/peernet"
	"diffusearch/internal/retrieval"
)

func main() {
	const (
		seed  = 11
		alpha = 0.3
	)

	// Corpus and workload shared by every peer.
	env, err := diffusearch.NewScaledEnvironment(seed, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	vocab := env.Bench.Vocabulary()
	pair := env.Bench.SamplePair(diffusearch.NewRand(seed))

	// A 60-peer small-world overlay.
	g := gengraph.WattsStrogatz(60, 6, 0.2, seed)
	fmt.Printf("overlay: %d peers, %d links\n", g.NumNodes(), g.NumEdges())

	// Documents: the gold at peer 17, irrelevant documents scattered.
	r := diffusearch.NewRand(seed + 1)
	docsAt := map[graph.NodeID][]retrieval.DocID{17: {pair.Gold}}
	for _, d := range env.Bench.SamplePool(r, 120) {
		u := r.IntN(g.NumNodes())
		docsAt[u] = append(docsAt[u], d)
	}

	// Launch one goroutine-peer per node over a channel fabric.
	fabric := peernet.NewChannelFabric(g.NumNodes(), 0)
	peers := make([]*peernet.Peer, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		p, err := peernet.NewPeer(peernet.PeerConfig{
			ID:        u,
			Neighbors: g.Neighbors(u),
			Vocab:     vocab,
			Docs:      docsAt[u],
			Alpha:     alpha,
		}, fabric.Transport(u))
		if err != nil {
			log.Fatal(err)
		}
		peers[u] = p
	}
	for _, p := range peers {
		p.Start()
	}
	defer func() {
		for _, p := range peers {
			p.Stop()
		}
		fabric.Close()
	}()

	// Let the asynchronous PPR diffusion settle (anti-entropy gossip).
	fmt.Print("diffusing embeddings")
	for i := 0; i < 5; i++ {
		time.Sleep(150 * time.Millisecond)
		fmt.Print(".")
	}
	var updates, messages int64
	for _, p := range peers {
		u, m := p.Stats()
		updates += u
		messages += m
	}
	fmt.Printf(" done (%d local updates, %d messages network-wide)\n", updates, messages)

	// Query from several peers at increasing distance from the gold host.
	dist := g.BFSDistances(17)
	for _, origin := range []graph.NodeID{17, 16, 20, 40} {
		start := time.Now()
		results, err := peers[origin].Query(vocab.Vector(pair.Query), 25, 1, 10*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		hit := len(results) > 0 && results[0].Doc == pair.Gold
		fmt.Printf("peer %2d (distance %d from gold): hit=%-5v best=%s in %v\n",
			origin, dist[origin], hit, describe(vocab, results), time.Since(start).Round(time.Millisecond))
	}
}

func describe(vocab *diffusearch.Vocabulary, results []retrieval.Result) string {
	if len(results) == 0 {
		return "<none>"
	}
	return fmt.Sprintf("%s(%.3f)", vocab.Word(results[0].Doc), results[0].Score)
}
