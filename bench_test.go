package diffusearch_test

// Benchmark harness: one benchmark per table/figure of the paper plus
// micro-benchmarks for the hot paths and ablation benches for the design
// choices described in PAPER.md and ROADMAP.md.
//
// The per-figure benchmarks run one full experiment iteration (placement →
// personalization → diffusion-scored walks) on a scaled environment per
// b.N step; cmd/experiments regenerates the figures at full paper scale.

import (
	"sync"
	"testing"

	"diffusearch"
	"diffusearch/internal/core"
	"diffusearch/internal/diffuse"
	"diffusearch/internal/expt"
	"diffusearch/internal/gengraph"
	"diffusearch/internal/graph"
	"diffusearch/internal/ppr"
	"diffusearch/internal/randx"
	"diffusearch/internal/retrieval"
	"diffusearch/internal/vecmath"
	"diffusearch/internal/walkindex"
)

var (
	benchOnce sync.Once
	benchEnv  *expt.Environment
	benchErr  error
)

// benchEnvironment caches a quarter-scale environment (~1,000 nodes,
// ~3,700-word vocabulary) shared by every benchmark.
func benchEnvironment(b *testing.B) *expt.Environment {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = diffusearch.NewScaledEnvironment(42, 0.25)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// --- Fig. 3: accuracy vs distance, one benchmark per subplot -------------

func benchmarkFig3(b *testing.B, m int) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := expt.AccuracyByDistance(env, expt.AccuracyConfig{
			M: m, Alphas: []float64{0.1, 0.5, 0.9}, MaxDistance: 8, TTL: 50,
			Iterations: 1, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_M10(b *testing.B)   { benchmarkFig3(b, 10) }
func BenchmarkFig3_M100(b *testing.B)  { benchmarkFig3(b, 100) }
func BenchmarkFig3_M1000(b *testing.B) { benchmarkFig3(b, 1000) }

// BenchmarkFig3_M3000 is the largest M the scaled pool supports, standing
// in for the paper's M=10000 subplot (cmd/experiments runs the real size).
func BenchmarkFig3_M3000(b *testing.B) { benchmarkFig3(b, 3000) }

// --- Table I: hop counts --------------------------------------------------

func benchmarkTableI(b *testing.B, m int) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := expt.HopCount(env, expt.HopCountConfig{
			Ms: []int{m}, Alpha: 0.5, Iterations: 1, QueriesPerIter: 10, TTL: 50,
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI_M10(b *testing.B)   { benchmarkTableI(b, 10) }
func BenchmarkTableI_M100(b *testing.B)  { benchmarkTableI(b, 100) }
func BenchmarkTableI_M1000(b *testing.B) { benchmarkTableI(b, 1000) }
func BenchmarkTableI_M3000(b *testing.B) { benchmarkTableI(b, 3000) }

// --- Ablation benches (design choices, see PAPER.md/ROADMAP.md) -----------

func BenchmarkAblationParallelWalks(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := expt.ComparePolicies(env, expt.CompareConfig{
			M: 100, Alpha: 0.5, TTL: 50, Iterations: 1, QueriesPerIter: 5, Seed: uint64(i),
			Variants: []expt.Variant{
				{Name: "walks-1", Policy: core.GreedyPolicy{Fanout: 1}},
				{Name: "walks-2", Policy: core.GreedyPolicy{Fanout: 2}},
				{Name: "walks-4", Policy: core.GreedyPolicy{Fanout: 4}},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselines(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := expt.ComparePolicies(env, expt.CompareConfig{
			M: 100, Alpha: 0.5, TTL: 50, Iterations: 1, QueriesPerIter: 2, Seed: uint64(i),
			Variants: expt.BaselineVariants(2),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRecallAtK(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := expt.RecallAtK(env, expt.RecallConfig{
			M: 200, Alpha: 0.5, Ks: []int{1, 5, 10}, TTL: 50, Iterations: 1, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks: the hot paths --------------------------------------

func BenchmarkDot300(b *testing.B) {
	r := randx.New(1)
	x := vecmath.RandomUnit(r, 300)
	y := vecmath.RandomUnit(r, 300)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += vecmath.Dot(x, y)
	}
	_ = sink
}

func BenchmarkDiffusionSyncStep(b *testing.B) {
	// One synchronous PPR sweep of a 64-d signal over the ~1,000-node graph.
	env := benchEnvironment(b)
	tr := graph.NewTransition(env.Graph, graph.ColumnStochastic)
	r := randx.New(2)
	e0 := vecmath.NewMatrix(env.Graph.NumNodes(), 64)
	for u := 0; u < env.Graph.NumNodes(); u++ {
		e0.SetRow(u, vecmath.RandomGaussian(r, 64, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := (ppr.PPRFilter{Alpha: 0.5, Tol: 0, MaxIter: 1}).Apply(tr, e0); err == nil {
			b.Fatal("one iteration must not converge at default tol")
		}
	}
}

// --- BenchmarkDiffuse*: the diffusion engines and their fused kernels ------
//
// One full diffusion to convergence per b.N step over the shared
// quarter-scale graph (~1,000 nodes), 16-d signal. The Parallel engine must
// beat Asynchronous on wall clock and allocations (tracked in
// BENCH_diffuse.json via cmd/benchjson).

// diffuseInput builds the shared diffusion benchmark input.
func diffuseInput(b *testing.B, dim int) (*graph.Transition, *vecmath.Matrix) {
	b.Helper()
	env := benchEnvironment(b)
	tr := graph.NewTransition(env.Graph, graph.ColumnStochastic)
	r := randx.New(3)
	e0 := vecmath.NewMatrix(env.Graph.NumNodes(), dim)
	for u := 0; u < env.Graph.NumNodes(); u++ {
		e0.SetRow(u, vecmath.RandomGaussian(r, dim, 1))
	}
	return tr, e0
}

func BenchmarkDiffuseAsynchronous(b *testing.B) {
	tr, e0 := diffuseInput(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := diffuse.Asynchronous(tr, e0, diffuse.Params{Alpha: 0.5, Tol: 1e-6},
			randx.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffuseParallel(b *testing.B) {
	tr, e0 := diffuseInput(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := diffuse.Parallel(tr, e0, diffuse.Params{Alpha: 0.5, Tol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffuseParallelSingleWorker isolates the frontier + fused-kernel
// gain from multi-core parallelism.
func BenchmarkDiffuseParallelSingleWorker(b *testing.B) {
	tr, e0 := diffuseInput(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := diffuse.Parallel(tr, e0, diffuse.Params{Alpha: 0.5, Tol: 1e-6, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffuseApplyRow measures the fused CSR edge-weight kernel alone:
// one accumulate pass over every node's row of a 64-d signal.
func BenchmarkDiffuseApplyRow(b *testing.B) {
	tr, e0 := diffuseInput(b, 64)
	n := tr.Graph().NumNodes()
	dst := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for u := 0; u < n; u++ {
			tr.ApplyRow(dst, u, 0.5, e0)
		}
	}
}

// BenchmarkDiffuseScalarApply measures the scalar CSR kernel behind
// FastNodeScores (one Transition.Apply over the whole graph).
func BenchmarkDiffuseScalarApply(b *testing.B) {
	tr, _ := diffuseInput(b, 1)
	n := tr.Graph().NumNodes()
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i%13) - 6
	}
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Apply(dst, src)
	}
}

func BenchmarkFastNodeScores(b *testing.B) {
	env := benchEnvironment(b)
	net := core.NewNetwork(env.Graph, env.Bench.Vocabulary())
	r := randx.New(4)
	pair := env.Bench.SamplePair(r)
	docs := append([]retrieval.DocID{pair.Gold}, env.Bench.SamplePool(r, 999)...)
	if err := net.PlaceDocuments(docs, core.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
		b.Fatal(err)
	}
	if err := net.ComputePersonalization(); err != nil {
		b.Fatal(err)
	}
	query := env.Bench.Vocabulary().Vector(pair.Query)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.FastNodeScores(query, 0.5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkScoreBatch measures the unified request API's multi-column
// scoring: one ScoreBatch call over batchSize distinct queries per b.N
// step on the default (Parallel) engine. Compare ns/op ÷ batchSize against
// BenchmarkFastNodeScores to see the amortization (tracked in
// BENCH_diffuse.json via cmd/benchjson).
func benchmarkScoreBatch(b *testing.B, batchSize int) {
	benchmarkScoreBatchTiled(b, batchSize, 0)
}

func benchmarkScoreBatchTiled(b *testing.B, batchSize, colTile int) {
	env := benchEnvironment(b)
	net := core.NewNetwork(env.Graph, env.Bench.Vocabulary())
	r := randx.New(6)
	pair := env.Bench.SamplePair(r)
	docs := append([]retrieval.DocID{pair.Gold}, env.Bench.SamplePool(r, 999)...)
	if err := net.PlaceDocuments(docs, core.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
		b.Fatal(err)
	}
	if err := net.ComputePersonalization(); err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, batchSize)
	for j := range queries {
		queries[j] = env.Bench.Vocabulary().Vector(env.Bench.SamplePair(r).Query)
	}
	req := core.DiffusionRequest{Alpha: 0.5, Seed: 6, ColTile: colTile}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.ScoreBatch(queries, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreBatch1(b *testing.B)  { benchmarkScoreBatch(b, 1) }
func BenchmarkScoreBatch8(b *testing.B)  { benchmarkScoreBatch(b, 8) }
func BenchmarkScoreBatch64(b *testing.B) { benchmarkScoreBatch(b, 64) }

// BenchmarkScoreBatchWide256 drives the cache-blocked wide-batch path:
// one B=256 ScoreBatch per step through the column-tiled kernels. At the
// bench environment's quarter scale the auto policy leaves B=256 untiled
// (the cache-model tile is as wide as the batch), so the request forces a
// 64-column width — the explicit-width contract is bit-identical to auto
// and runs the same tile retirement and coalescing the full-scale
// BENCH_diffuse.json batch_wide rows measure. Under -benchtime 1x this
// doubles as the CI smoke of the tiled kernels.
func BenchmarkScoreBatchWide256(b *testing.B) { benchmarkScoreBatchTiled(b, 256, 64) }

// BenchmarkWalkIndexWarm measures the walk-index serving path: one B=1
// ScoreBatch per b.N step against a fully built segment store (compare
// with BenchmarkScoreBatch1 for the cold CSR cost it replaces; the
// full-scale speedup and its ≥4× acceptance bar live in
// BENCH_diffuse.json via cmd/benchjson). The store build runs outside
// the timer — and under -benchtime 1x this doubles as the CI smoke test
// of the offline build path.
func BenchmarkWalkIndexWarm(b *testing.B) {
	env := benchEnvironment(b)
	net := core.NewNetwork(env.Graph, env.Bench.Vocabulary())
	r := randx.New(7)
	pair := env.Bench.SamplePair(r)
	docs := append([]retrieval.DocID{pair.Gold}, env.Bench.SamplePool(r, 499)...)
	if err := net.PlaceDocuments(docs, core.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
		b.Fatal(err)
	}
	if err := net.ComputePersonalization(); err != nil {
		b.Fatal(err)
	}
	indexed, err := walkindex.Attach(net, walkindex.Config{Alpha: 0.5, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := indexed.Backend().Build(); err != nil {
		b.Fatal(err)
	}
	query := env.Bench.Vocabulary().Vector(pair.Query)
	req := core.DiffusionRequest{Alpha: 0.5, Tol: 1e-6, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.ScoreBatch([][]float64{query}, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunQueryGreedyTTL50(b *testing.B) {
	env := benchEnvironment(b)
	net := core.NewNetwork(env.Graph, env.Bench.Vocabulary())
	r := randx.New(5)
	pair := env.Bench.SamplePair(r)
	docs := append([]retrieval.DocID{pair.Gold}, env.Bench.SamplePool(r, 99)...)
	if err := net.PlaceDocuments(docs, core.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
		b.Fatal(err)
	}
	if err := net.ComputePersonalization(); err != nil {
		b.Fatal(err)
	}
	query := env.Bench.Vocabulary().Vector(pair.Query)
	scores, err := net.FastNodeScores(query, 0.5, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin := i % env.Graph.NumNodes()
		if _, err := net.RunQuery(origin, query, pair.Gold, core.QueryConfig{
			TTL: 50, Seed: uint64(i), Scores: scores,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFanout runs one bloom-routed fan-out sweep iteration on the
// quarter-scale environment (single filter size, small query set): gossip
// to quiescence, then routed vs unrouted walks on identical queries. The
// CI bench-smoke step runs it once per push so the protocol harness and
// the routing gate stay exercised end to end; the gated numbers live in
// cmd/benchjson's fanout rows.
func BenchmarkFanout(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := expt.FanoutSweep(env, expt.FanoutConfig{
			M: 200, Queries: 16, BitsGrid: []int{1024}, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 || rows[0].RoutedMsgsPerQ <= 0 {
			b.Fatalf("fanout sweep produced no routed traffic: %+v", rows)
		}
	}
}

func BenchmarkCentralizedSearch(b *testing.B) {
	env := benchEnvironment(b)
	vocab := env.Bench.Vocabulary()
	docs := make([]retrieval.DocID, 1000)
	copy(docs, env.Bench.Pool[:1000])
	engine := retrieval.NewEngine(vocab, docs)
	query := vocab.Vector(env.Bench.Pairs[0].Query)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Search(query, 10, retrieval.DotProduct)
	}
}

func BenchmarkSocialGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := gengraph.SocialCircles(gengraph.SocialCirclesParams{
			Nodes: 1000, TargetAvgDegree: 20, MeanCircleSize: 40, SizeSigma: 0.45,
			IntraFraction: 0.94, MaxIntraProb: 0.72, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = g.NumEdges()
	}
}
