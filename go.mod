module diffusearch

go 1.24
