// Command graphgen generates P2P topologies, prints their statistics, and
// optionally writes a SNAP-style edge list. The social model validates the
// Facebook social-circles substitution (see PAPER.md).
//
// Usage:
//
//	graphgen -model social -nodes 4039 -seed 42 -out graph.txt
//	graphgen -model ba -nodes 1000 -param 4
//	graphgen -model ws -nodes 1000 -param 10 -beta 0.1
//	graphgen -model er -nodes 1000 -p 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"diffusearch/internal/gengraph"
	"diffusearch/internal/graph"
)

func main() {
	var (
		model = flag.String("model", "social", "graph model: social|ba|ws|er")
		nodes = flag.Int("nodes", 4039, "number of nodes")
		param = flag.Int("param", 4, "ba: edges per new node; ws: lattice degree (even)")
		beta  = flag.Float64("beta", 0.1, "ws: rewiring probability")
		p     = flag.Float64("p", 0.01, "er: edge probability")
		deg   = flag.Float64("deg", 43.7, "social: target average degree")
		seed  = flag.Uint64("seed", 42, "generator seed")
		out   = flag.String("out", "", "write edge list to this file")
	)
	flag.Parse()
	if err := run(*model, *nodes, *param, *beta, *p, *deg, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(model string, nodes, param int, beta, p, deg float64, seed uint64, out string) error {
	var (
		g   *graph.Graph
		err error
	)
	switch model {
	case "social":
		params := gengraph.FacebookLikeParams(seed)
		params.Nodes = nodes
		params.TargetAvgDegree = deg
		g, err = gengraph.SocialCircles(params)
		if err != nil {
			return err
		}
	case "ba":
		g = gengraph.BarabasiAlbert(nodes, param, seed)
	case "ws":
		g = gengraph.WattsStrogatz(nodes, param, beta, seed)
	case "er":
		g = gengraph.ErdosRenyi(nodes, p, seed)
	default:
		return fmt.Errorf("unknown model %q (want social|ba|ws|er)", model)
	}

	fmt.Printf("model %s (seed %d)\n%s\n", model, seed, graph.Summarize(g, seed))
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("create %s: %w", out, err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", out, err)
	}
	fmt.Printf("edge list written to %s\n", out)
	return nil
}
