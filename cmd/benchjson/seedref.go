package main

// seedConcurrent is the repo's original "realistic" diffusion driver,
// preserved verbatim as the benchmark baseline for BENCH_diffuse.json: one
// goroutine per node, map mailboxes, and a sleep-polling quiescence
// detector. The library replaced it with diffuse.Parallel (fixed worker
// pool, residual-driven frontier, pending-counter quiescence); keeping the
// old driver here lets every snapshot quantify that replacement on the
// same input.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"diffusearch/internal/diffuse"
	"diffusearch/internal/graph"
	"diffusearch/internal/vecmath"
)

func seedConcurrent(tr *graph.Transition, e0 *vecmath.Matrix, alpha, tol float64, timeout time.Duration) (*vecmath.Matrix, diffuse.Stats, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, diffuse.Stats{}, fmt.Errorf("seedref: teleport probability %v out of (0,1]", alpha)
	}
	g := tr.Graph()
	n := g.NumNodes()
	if tol <= 0 {
		tol = diffuse.DefaultTol
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	pushTol := tol / 4

	dim := e0.Cols()
	peers := make([]*peerState, n)
	for u := 0; u < n; u++ {
		peers[u] = &peerState{
			own:    vecmath.Clone(e0.Row(u)),
			inbox:  make(map[graph.NodeID][]float64, g.Degree(u)),
			notify: make(chan struct{}, 1),
		}
	}

	var (
		busy     atomic.Int64 // nodes currently processing an update
		dirty    atomic.Int64 // nodes with unprocessed mail
		updates  atomic.Int64
		messages atomic.Int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// deliver pushes src's embedding to dst's mailbox and wakes dst.
	deliver := func(src, dst graph.NodeID, emb []float64) {
		ps := peers[dst]
		ps.mu.Lock()
		if prev, ok := ps.inbox[src]; ok {
			copy(prev, emb) // reuse the buffer; last write wins
		} else {
			ps.inbox[src] = vecmath.Clone(emb)
		}
		wasDirty := ps.dirty
		ps.dirty = true
		ps.mu.Unlock()
		messages.Add(1)
		if !wasDirty {
			dirty.Add(1)
		}
		select {
		case ps.notify <- struct{}{}:
		default: // already notified; the pending wake-up will see this mail
		}
	}

	worker := func(u graph.NodeID) {
		defer wg.Done()
		ps := peers[u]
		scratch := make([]float64, dim)
		cache := make(map[graph.NodeID][]float64, g.Degree(u))
		for {
			select {
			case <-stop:
				return
			case <-ps.notify:
			}
			busy.Add(1)
			ps.mu.Lock()
			for src, emb := range ps.inbox {
				if prev, ok := cache[src]; ok {
					copy(prev, emb)
				} else {
					cache[src] = vecmath.Clone(emb)
				}
				delete(ps.inbox, src)
			}
			if ps.dirty {
				ps.dirty = false
				dirty.Add(-1)
			}
			ps.mu.Unlock()

			// e_u ← (1−a)·Σ_v A[u][v]·ê_v + a·e0_u over cached mail.
			vecmath.Zero(scratch)
			for _, v := range g.Neighbors(u) {
				if emb, ok := cache[v]; ok {
					vecmath.AXPY(scratch, (1-alpha)*tr.Weight(u, v), emb)
				}
			}
			vecmath.AXPY(scratch, alpha, e0.Row(u))
			ps.mu.Lock()
			change := vecmath.MaxAbsDiff(ps.own, scratch)
			copy(ps.own, scratch)
			ps.mu.Unlock()
			updates.Add(1)
			if change > pushTol {
				for _, v := range g.Neighbors(u) {
					deliver(u, v, scratch)
				}
			}
			busy.Add(-1)
		}
	}

	wg.Add(n)
	for u := 0; u < n; u++ {
		go worker(u)
	}
	// Bootstrap: every peer announces its personalization vector, and every
	// peer (including isolated ones) is marked dirty so it applies at least
	// one local update before the network can quiesce.
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			deliver(u, v, e0.Row(u))
		}
	}
	for u := 0; u < n; u++ {
		ps := peers[u]
		ps.mu.Lock()
		wasDirty := ps.dirty
		ps.dirty = true
		ps.mu.Unlock()
		if !wasDirty {
			dirty.Add(1)
		}
		select {
		case ps.notify <- struct{}{}:
		default:
		}
	}

	// Quiescence detection: no busy worker and no dirty mailbox, observed
	// stably — by sleep polling, the pattern the new engine retired.
	deadline := time.Now().Add(timeout)
	quiesced := false
	for time.Now().Before(deadline) {
		if busy.Load() == 0 && dirty.Load() == 0 {
			time.Sleep(200 * time.Microsecond)
			if busy.Load() == 0 && dirty.Load() == 0 {
				quiesced = true
				break
			}
			continue
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	out := vecmath.NewMatrix(n, dim)
	for u := 0; u < n; u++ {
		out.SetRow(u, peers[u].own)
	}
	st := diffuse.Stats{
		Updates:   updates.Load(),
		Messages:  messages.Load(),
		Residual:  pushTol,
		Converged: quiesced,
	}
	if !quiesced {
		return out, st, fmt.Errorf("seedref: did not quiesce within %v", timeout)
	}
	return out, st, nil
}

// peerState is the mailbox-and-embedding state of one concurrent peer.
type peerState struct {
	mu     sync.Mutex
	own    []float64
	inbox  map[graph.NodeID][]float64
	dirty  bool
	notify chan struct{}
}
