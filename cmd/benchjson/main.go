// Command benchjson measures the diffusion engines on the paper's workload
// (a scaled environment with a realistic document placement, so E0 is the
// sparse personalization matrix) and writes a machine-readable snapshot
// (BENCH_diffuse.json) so CI can track the perf trajectory of the hottest
// path.
//
// Three drivers are timed on the identical input: the seed repo's
// goroutine-per-node "concurrent" driver (preserved in seedref.go as the
// baseline the Parallel engine replaced; skipped with -skip-seed), the
// deterministic Asynchronous reference, and the residual-driven Parallel
// engine. Speedups are reported against both baselines; gomaxprocs records
// how many cores the snapshot machine offered (the Parallel engine's
// scaling headroom).
//
// BenchmarkScoreBatch rows (batch widths 1/8/64) time the unified request
// API's multi-column query scoring on the Parallel engine against the
// sequential baseline of B independent FastNodeScores calls; the batch=64
// row is the ScoreBatch amortization acceptance number.
//
// Batch_wide rows (B=256/512) compare the legacy untiled column kernels
// against the auto column-tiled + SIMD path on the Parallel engine over
// the projected wide relevance signal; outputs are bit-identical and the
// B=512 row carries the ≥1.3× tiling acceptance bar. The gs row compares
// the multi-color Gauss–Seidel engine's sweep count against the Parallel
// engine's block-Jacobi rounds at the same tolerance (bar: ≤0.8×) and its
// tight-tolerance scores against the Synchronous reference (bar: ≤1e-9).
//
// Serve rows measure the internal/serve admission-controlled scheduler
// under closed-loop load at 1/8/64 concurrent clients: offered load grows
// with concurrency, the scheduler coalesces the concurrent callers into
// multi-column diffusions, and each row records throughput against the
// per-query (B=1) path plus the realized batch width and cache hit rate.
//
// Shard rows measure the sharded multi-tenant environment: T tenant graphs
// diffusing concurrently over partitioned Transition shards on one shared
// worker pool, against the single-CSR status quo — both as raw engine
// overlap (sequential vs concurrent ScoreBatch) and as served throughput
// (per-tenant coalescing schedulers vs per-query calls), with the realized
// cross-shard residual traffic fraction.
//
// Priority rows measure the deadline-aware scheduler under a mixed 90/10
// interactive/bulk load against the FIFO coalescer on the identical
// workload: interactive queries jump queued bulk bursts, so interactive
// p99 must improve ≥1.5× while total QPS stays within 10% (the ISSUE 5
// acceptance bar, gated with -baseline).
//
// Walkindex rows measure the precomputed PPR segment store against the
// cold CSR per-query path on the identical workload: offline build cost,
// store bytes per node, and warm vs cold ns/query at a partial and a full
// budget. The full-budget row carries the acceptance bar (warm ≤ 0.25×
// cold, i.e. speedup ≥ 4×) and every row must stay within the request
// tolerance of the exact backend.
//
// Topk rows measure the bidirectional certified top-k path against the
// full-vector ScoreBatch baseline on the CSR backend at several k: the
// reverse-push tables bound each candidate's final score, so the forward
// diffusion stops at the first sweep whose k/(k+1) gap is certified. The
// k=10 row carries the acceptance bar (certified top-10 ≥ 2× faster
// ns/query than the full-vector path) and every row's returned set must
// equal the full-vector top-k exactly (agreement 1.0 — the path is exact
// by construction, certificate or fallback).
//
// Fanout rows measure bloom-filter routed query fan-out on the peernet
// protocol harness (a deterministic count-based simulation, so the rows
// are bit-identical across hardware): at each filter size, the routed
// walk's messages/query and recall@K against the unrouted greedy walk on
// identical queries and origins. The bits=1024 row carries the acceptance
// bars — routed messages ≤ 0.7× unrouted with recall ratio ≥ 1.0 — and
// the message reduction is gated against the committed row.
//
// The telemetry row times the identical B=8 ScoreBatch bare and with the
// full sweep observer feeding a live telemetry registry, interleaved
// min-of-3 so clock drift hits both sides equally. The within-run overhead
// fraction carries the instrumentation acceptance bar (≤3% ns/query) and
// is gated absolutely — no baseline row needed, both sides are measured
// back-to-back in this run.
//
// The apply_row_affine rows re-run the kernel-unrolling comparison behind
// graph.Transition.ApplyRowAffine (shipped 4-edge-unrolled; the historical
// 2-edge kernel is kept as ApplyRowAffine2) so the snapshot records why the
// shipped kernel was chosen on the recording hardware.
//
// With -baseline, the freshly measured snapshot is gated against a
// committed one and the command exits non-zero when a Parallel-engine,
// ScoreBatch, serve, shard, priority, walkindex, topk, or fanout row
// regressed
// more than -max-regress (CI's bench-regression step).
//
// Usage:
//
//	benchjson -scale 0.25 -docs 500 -alpha 0.5 -seed 42 -out BENCH_diffuse.json
//	benchjson -scale 0.25 -skip-seed -out /tmp/fresh.json -baseline BENCH_diffuse.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"diffusearch/internal/core"
	"diffusearch/internal/diffuse"
	"diffusearch/internal/expt"
	"diffusearch/internal/randx"
	"diffusearch/internal/retrieval"
	"diffusearch/internal/telemetry"
	"diffusearch/internal/vecmath"
)

type engineResult struct {
	Engine         string  `json:"engine"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	Sweeps         int     `json:"sweeps,omitempty"`
	Updates        int64   `json:"updates"`
	Messages       int64   `json:"messages"`
	SpeedupVsSeed  float64 `json:"speedup_vs_seed"`
	SpeedupVsAsync float64 `json:"speedup_vs_async"`
}

// batchResult records one BenchmarkScoreBatch width: the Parallel engine
// scoring B queries through one multi-column diffusion, against the
// sequential baseline of B independent FastNodeScores calls.
type batchResult struct {
	Batch               int     `json:"batch"`
	NsPerOp             int64   `json:"ns_per_op"`
	NsPerQuery          int64   `json:"ns_per_query"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	BytesPerOp          int64   `json:"bytes_per_op"`
	Sweeps              int     `json:"sweeps"`
	MessagesPerQuery    float64 `json:"messages_per_query"`
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
}

// serveResult records one closed-loop concurrency level: the coalescing
// scheduler's throughput and latency against the per-query (B=1) path on
// the same workload, plus the realized batch width, cache hit rate, and
// aggregated sweeps/query.
type serveResult struct {
	Clients           int     `json:"clients"`
	QPS               float64 `json:"qps"`
	PerQueryQPS       float64 `json:"per_query_qps"`
	SpeedupVsPerQuery float64 `json:"speedup_vs_per_query"`
	P50Ns             int64   `json:"p50_ns"`
	P99Ns             int64   `json:"p99_ns"`
	PerQueryP99Ns     int64   `json:"per_query_p99_ns"`
	MeanBatch         float64 `json:"mean_batch"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	SweepsPerQuery    float64 `json:"sweeps_per_query"`
}

// priorityResult records one mixed-load concurrency level: the identical
// 90/10 interactive/bulk workload through the FIFO coalescer (zero-valued
// SubmitOpts) and the priority scheduler (classes tagged). IntP99Gain is
// the acceptance number — the priority scheduler must protect interactive
// p99 under bulk bursts (≥1.5× vs FIFO) without giving up total
// throughput (QPSRatio ≥ 0.9).
type priorityResult struct {
	Clients          int     `json:"clients"`
	FifoQPS          float64 `json:"fifo_qps"`
	PriorityQPS      float64 `json:"priority_qps"`
	QPSRatio         float64 `json:"qps_ratio"`
	FifoIntP99Ns     int64   `json:"fifo_int_p99_ns"`
	PriorityIntP99Ns int64   `json:"priority_int_p99_ns"`
	IntP99Gain       float64 `json:"int_p99_gain"`
	FifoBulkP99Ns    int64   `json:"fifo_bulk_p99_ns"`
	PriorityBulkP99N int64   `json:"priority_bulk_p99_ns"`
	MeanBatchFifo    float64 `json:"mean_batch_fifo"`
	MeanBatchPri     float64 `json:"mean_batch_priority"`
}

// kernelResult records one ApplyRowAffine unrolling variant at one batch
// width: ns for a full pass over every CSR row of the snapshot graph.
type kernelResult struct {
	Kernel  string `json:"kernel"` // "unroll2" (historical) or "unroll4" (shipped)
	Batch   int    `json:"batch"`
	NsPerOp int64  `json:"ns_per_op"`
}

// shardResult records one multi-tenant sharding configuration: T tenant
// graphs diffusing concurrently over partitioned shards on one worker
// pool, against the single-CSR status quo on the identical workload. The
// engine speedup (concurrent sharded ScoreBatch vs sequential single-CSR
// ScoreBatch) measures core-level overlap and is ≈1.0 on a single-core
// recorder; the serve speedup (per-tenant coalescing schedulers vs
// per-query single-CSR calls) is the acceptance number — it comes from
// batching amortization and holds on one core.
type shardResult struct {
	Shards            int     `json:"shards"`
	Tenants           int     `json:"tenants"`
	Partitioner       string  `json:"partitioner"`
	SeqNsPerQuery     int64   `json:"seq_ns_per_query"`
	ConcNsPerQuery    int64   `json:"conc_ns_per_query"`
	EngineSpeedup     float64 `json:"engine_speedup"`
	CrossFrac         float64 `json:"cross_frac"`
	PerQueryQPS       float64 `json:"per_query_qps"`
	MultiQPS          float64 `json:"multi_qps"`
	SpeedupVsPerQuery float64 `json:"speedup_vs_per_query"`
}

// walkIndexResult records one walk-index store budget: what the
// precomputed segments cost to build and hold, and the warm-vs-cold
// per-query speedup they buy at that budget (expt.WalkIndexRow, frozen
// for the snapshot).
type walkIndexResult struct {
	BudgetFrac     float64 `json:"budget_frac"`
	BudgetBytes    int64   `json:"budget_bytes"` // 0 = unbounded
	StoreBytes     int64   `json:"store_bytes"`
	BytesPerNode   float64 `json:"bytes_per_node"`
	Coverage       float64 `json:"coverage"`
	BuildNs        int64   `json:"build_ns"`
	ColdNsPerQuery int64   `json:"cold_ns_per_query"`
	WarmNsPerQuery int64   `json:"warm_ns_per_query"`
	Speedup        float64 `json:"speedup"`
	MaxErrVsCSR    float64 `json:"max_err_vs_csr"`
}

// topKResult records one k of the bidirectional top-k sweep on the
// Parallel engine: ns/query of the certified ranked path vs the
// full-vector ScoreBatch baseline on the same queries, the certificate
// hit rate, and the exactness check (expt.TopKRow, frozen for the
// snapshot).
type topKResult struct {
	K              int     `json:"k"`
	FullNsPerQuery int64   `json:"full_ns_per_query"`
	TopKNsPerQuery int64   `json:"topk_ns_per_query"`
	Speedup        float64 `json:"speedup"`
	FullMsgsPerQ   float64 `json:"full_msgs_per_query"`
	TopKMsgsPerQ   float64 `json:"topk_msgs_per_query"`
	Certified      float64 `json:"certified"`
	Agreement      float64 `json:"agreement"`
}

// batchWideResult records one wide-batch width of the column-tiled kernel
// comparison: the Parallel engine diffusing the projected B-query
// relevance signal with tiling disabled (ColTile -1, the legacy untiled
// path) and with the auto policy (ColTile 0, which engages at these
// widths). Both runs are bit-identical in results; the row records the
// throughput gap, and the B=512 row carries the tiling acceptance bar
// (tiled ≥ 1.3× untiled ns/query).
type batchWideResult struct {
	Batch             int     `json:"batch"`
	Engine            string  `json:"engine"`
	TileWidth         int     `json:"tile_width"` // auto-picked by the cache model
	UntiledNsPerQuery int64   `json:"untiled_ns_per_query"`
	TiledNsPerQuery   int64   `json:"tiled_ns_per_query"`
	Speedup           float64 `json:"speedup"`
	Sweeps            int     `json:"sweeps"`
}

// gsResult records the multi-color Gauss–Seidel engine against the
// Parallel engine's block-Jacobi rounds on the snapshot's embedding
// diffusion at the snapshot tolerance: sweep counts (the convergence
// acceptance bar — GS sweeps ≤ 0.8× Parallel rounds), the number of color
// classes the greedy coloring produced, wall clock, and the max absolute
// score difference vs the Synchronous engine at a tight tolerance (the
// correctness bar, ≤ 1e-9).
type gsResult struct {
	Sweeps         int     `json:"sweeps"`
	ParallelRounds int     `json:"parallel_rounds"`
	SweepRatio     float64 `json:"sweep_ratio"`
	Colors         int     `json:"colors"`
	NsPerOp        int64   `json:"ns_per_op"`
	MaxErrVsSync   float64 `json:"max_err_vs_sync"`
}

// fanoutResult records one filter size of the bloom-routed fan-out sweep on
// the deterministic protocol harness: the routed walk's message cost and
// recall against the unrouted greedy walk on identical queries (counts, not
// timings — the row is bit-reproducible in the seed on any hardware).
type fanoutResult struct {
	Bits             int     `json:"bits"`
	FilterBytes      int     `json:"filter_bytes"`
	GossipRounds     int     `json:"gossip_rounds"`
	UnroutedMsgsPerQ float64 `json:"unrouted_msgs_per_query"`
	RoutedMsgsPerQ   float64 `json:"routed_msgs_per_query"`
	MsgRatio         float64 `json:"msg_ratio"`
	UnroutedRecall   float64 `json:"unrouted_recall"`
	RoutedRecall     float64 `json:"routed_recall"`
	RecallRatio      float64 `json:"recall_ratio"`
	HitsPerQ         float64 `json:"hits_per_query"`
	EarlyStopFrac    float64 `json:"early_stop_frac"`
}

// Fanout acceptance bars: at the deployment default filter size the routed
// walk must cut messages/query to ≤0.7× the unrouted baseline while finding
// the gold document at least as often (recall ratio ≥ 1.0). Both are
// within-run count ratios on a deterministic simulation, so they hold
// bit-exactly on any hardware.
const (
	fanoutAcceptanceBits = 1024
	maxFanoutMsgRatio    = 0.7
	minFanoutRecallRatio = 1.0
)

// maxTelemetryOverhead is the instrumentation acceptance bar: an attached
// sweep observer may not cost more than this fraction of ns/query over
// the bare ScoreBatch path. The gate is absolute (both sides measured in
// one run), so it holds on any hardware.
const maxTelemetryOverhead = 0.03

// telemetryResult records the instrumentation overhead measurement: the
// same B-query ScoreBatch with no observer and with the full telemetry
// sweep observer attached, each the min of three interleaved runs.
type telemetryResult struct {
	Batch           int     `json:"batch"`
	BaseNsPerQuery  int64   `json:"base_ns_per_query"`
	InstrNsPerQuery int64   `json:"instrumented_ns_per_query"`
	OverheadFrac    float64 `json:"overhead_frac"`
}

type snapshot struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// CPUModel and GoVersion describe the recording machine and toolchain.
	// They are informational: the regression gate keys its config-equality
	// and same-hardware checks on the fields below, so snapshots recorded
	// before these stamps existed stay comparable.
	CPUModel   string         `json:"cpu_model,omitempty"`
	GoVersion  string         `json:"go_version,omitempty"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Nodes      int            `json:"nodes"`
	Edges      int            `json:"edges"`
	Docs       int            `json:"docs"`
	Dim        int            `json:"dim"`
	Alpha      float64        `json:"alpha"`
	Tol        float64        `json:"tol"`
	Seed       uint64         `json:"seed"`
	Engines    []engineResult `json:"engines"`
	ScoreBatch []batchResult  `json:"score_batch"`
	// BatchWide records the column-tiled wide-batch rows; the B=512 row
	// carries the ≥1.3× tiled-vs-untiled acceptance number.
	BatchWide []batchWideResult `json:"batch_wide"`
	// GS records the multi-color Gauss–Seidel engine row; it carries the
	// sweeps ≤ 0.8× Parallel-rounds and ≤1e-9-vs-Synchronous acceptance
	// numbers.
	GS    []gsResult    `json:"gs"`
	Serve []serveResult `json:"serve"`
	// Shard records the multi-tenant sharded-environment rows; the
	// tenants≥4 rows carry the ≥1.5×-vs-single-CSR acceptance number.
	Shard []shardResult `json:"shard"`
	// Priority records the deadline-aware scheduling rows; every row
	// carries the ≥1.5× interactive-p99-vs-FIFO acceptance number.
	Priority []priorityResult `json:"priority"`
	// WalkIndex records the segment-store rows; the full-coverage row
	// carries the ≥4× warm-vs-cold acceptance number, and every row's
	// error vs the exact CSR backend must stay within Tol.
	WalkIndex []walkIndexResult `json:"walkindex"`
	// TopK records the bidirectional certified top-k rows; the k=10 row
	// carries the ≥2×-vs-full-vector acceptance number, and every row's
	// agreement with the exact full-vector top-k must be 1.0.
	TopK []topKResult `json:"topk"`
	// Fanout records the bloom-routed query fan-out rows; the
	// fanoutAcceptanceBits row carries the ≤0.7× messages/query and
	// recall-ratio ≥1.0 acceptance numbers.
	Fanout []fanoutResult `json:"fanout"`
	// Telemetry records the instrumentation overhead row; OverheadFrac is
	// gated absolutely at maxTelemetryOverhead (≤3% ns/query).
	Telemetry []telemetryResult `json:"telemetry"`
	// ApplyRowAffine records the kernel-unrolling evaluation; Kernel
	// "unroll4" is the shipped ApplyRowAffine, "unroll2" the historical
	// variant kept as ApplyRowAffine2.
	ApplyRowAffine []kernelResult `json:"apply_row_affine"`
}

func main() {
	var (
		scale    = flag.Float64("scale", 0.25, "environment scale in (0,1]")
		docs     = flag.Int("docs", 500, "documents placed (gold + irrelevant pool)")
		alpha    = flag.Float64("alpha", 0.5, "PPR teleport probability")
		tol      = flag.Float64("tol", 1e-6, "convergence tolerance")
		seed     = flag.Uint64("seed", 42, "master seed")
		out      = flag.String("out", "BENCH_diffuse.json", "output path")
		workers  = flag.Int("workers", 4, "parallel engine pool size, pinned (not GOMAXPROCS) so allocs/op are machine-independent for the regression gate")
		skipSeed = flag.Bool("skip-seed", false, "skip the slow seed-concurrent baseline driver")
		baseline = flag.String("baseline", "", "committed snapshot to compare against; exits non-zero on Parallel-row regressions")
		regress  = flag.Float64("max-regress", 0.25, "allowed fractional regression vs -baseline (allocs absolute at the pinned -workers count; ns/op normalized to the async row so the gate transfers across runner hardware)")
	)
	flag.Parse()
	if err := run(*scale, *docs, *alpha, *tol, *seed, *out, *workers, *skipSeed, *baseline, *regress); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(scale float64, numDocs int, alpha, tol float64, seed uint64, out string,
	workers int, skipSeed bool, baseline string, maxRegress float64) error {
	env, err := expt.NewEnvironment(expt.ScaledParams(seed, scale))
	if err != nil {
		return err
	}
	if numDocs > env.MaxPoolDocs() {
		numDocs = env.MaxPoolDocs()
	}
	net := core.NewNetwork(env.Graph, env.Bench.Vocabulary())
	r := randx.Derive(seed, "benchjson")
	pair := env.Bench.SamplePair(r)
	docs := append([]retrieval.DocID{pair.Gold}, env.Bench.SamplePool(r, numDocs-1)...)
	if err := net.PlaceDocuments(docs, core.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
		return err
	}
	if err := net.ComputePersonalization(); err != nil {
		return err
	}
	e0 := net.PersonalizationMatrix()
	tr := net.Transition()
	if workers <= 0 {
		workers = 4
	}
	params := diffuse.Params{Alpha: alpha, Tol: tol, Workers: workers}

	snap := snapshot{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpuModel(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Nodes:      env.Graph.NumNodes(),
		Edges:      env.Graph.NumEdges(),
		Docs:       numDocs,
		Dim:        e0.Cols(),
		Alpha:      alpha,
		Tol:        tol,
		Seed:       seed,
	}

	type driver struct {
		name string
		fn   func() (diffuse.Stats, error)
	}
	var drivers []driver
	if !skipSeed {
		drivers = append(drivers, driver{"seed-concurrent", func() (diffuse.Stats, error) {
			_, st, err := seedConcurrent(tr, e0, alpha, tol, 2*time.Minute)
			return st, err
		}})
	}
	drivers = append(drivers,
		driver{"async", func() (diffuse.Stats, error) {
			_, st, err := diffuse.Run(diffuse.EngineAsynchronous, tr, e0, params, seed)
			return st, err
		}},
		driver{"parallel", func() (diffuse.Stats, error) {
			_, st, err := diffuse.Run(diffuse.EngineParallel, tr, e0, params, seed)
			return st, err
		}},
		driver{"gs", func() (diffuse.Stats, error) {
			_, st, err := diffuse.Run(diffuse.EngineParallelGS, tr, e0, params, seed)
			return st, err
		}},
	)

	var seedNs, asyncNs int64
	for _, d := range drivers {
		st, err := d.fn()
		if err != nil {
			return fmt.Errorf("driver %s: %w", d.name, err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
		er := engineResult{
			Engine:      d.name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Sweeps:      st.Sweeps,
			Updates:     st.Updates,
			Messages:    st.Messages,
		}
		switch d.name {
		case "seed-concurrent":
			seedNs = er.NsPerOp
		case "async":
			asyncNs = er.NsPerOp
		}
		snap.Engines = append(snap.Engines, er)
	}
	// Cross-speedups need every driver timed first; fill them in one pass.
	for i := range snap.Engines {
		er := &snap.Engines[i]
		if er.NsPerOp <= 0 {
			continue
		}
		if seedNs > 0 {
			er.SpeedupVsSeed = float64(seedNs) / float64(er.NsPerOp)
		}
		er.SpeedupVsAsync = float64(asyncNs) / float64(er.NsPerOp)
		fmt.Printf("%-16s %12d ns/op %10d B/op %8d allocs/op  updates=%d messages=%d speedup_vs_seed=%.2fx\n",
			er.Engine, er.NsPerOp, er.BytesPerOp, er.AllocsPerOp, er.Updates, er.Messages, er.SpeedupVsSeed)
	}

	// BenchmarkScoreBatch: the Parallel engine scoring B queries through
	// one multi-column diffusion, vs the sequential baseline of B
	// independent FastNodeScores calls (the legacy per-query path).
	queries := make([][]float64, 512)
	for j := range queries {
		queries[j] = env.Bench.Vocabulary().Vector(env.Bench.SamplePair(r).Query)
	}
	query := queries[0]
	if _, err := net.FastNodeScores(query, alpha, 0); err != nil {
		return err
	}
	seqRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := net.FastNodeScores(query, alpha, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	seqNs := seqRes.NsPerOp()
	req := core.DiffusionRequest{Engine: diffuse.EngineParallel, Alpha: alpha, Workers: workers, Seed: seed}
	for _, bw := range []int{1, 8, 64} {
		batch := queries[:bw]
		_, st, err := net.ScoreBatch(batch, req)
		if err != nil {
			return fmt.Errorf("scorebatch B=%d: %w", bw, err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := net.ScoreBatch(batch, req); err != nil {
					b.Fatal(err)
				}
			}
		})
		br := batchResult{
			Batch:            bw,
			NsPerOp:          res.NsPerOp(),
			NsPerQuery:       res.NsPerOp() / int64(bw),
			AllocsPerOp:      res.AllocsPerOp(),
			BytesPerOp:       res.AllocedBytesPerOp(),
			Sweeps:           st.Sweeps,
			MessagesPerQuery: float64(st.Messages) / float64(bw),
		}
		if br.NsPerQuery > 0 {
			br.SpeedupVsSequential = float64(seqNs) / float64(br.NsPerQuery)
		}
		fmt.Printf("scorebatch-%-5d %12d ns/op %12d ns/query %8d allocs/op  msgs/query=%.0f speedup_vs_seq=%.2fx\n",
			bw, br.NsPerOp, br.NsPerQuery, br.AllocsPerOp, br.MessagesPerQuery, br.SpeedupVsSequential)
		snap.ScoreBatch = append(snap.ScoreBatch, br)
	}

	// Wide-batch tiled rows: the Parallel engine diffusing the projected
	// B-query relevance signal (the same x_j[v] = e_qj · E0[v] construction
	// ScoreBatch diffuses) with tiling disabled — the legacy untiled path,
	// byte-for-byte the pre-tiling kernel — and with the auto column-tile
	// policy, which engages at these widths and also routes the compute
	// through the SIMD affine and residual kernels. Outputs are
	// bit-identical; the rows record the throughput gap at serving batch
	// widths and the B=512 row carries the tiling acceptance bar.
	nodes := env.Graph.NumNodes()
	wideX := vecmath.NewMatrix(nodes, len(queries))
	for u := 0; u < nodes; u++ {
		vecmath.DotColumns(wideX.Row(u), queries, e0.Row(u))
	}
	for _, bw := range []int{256, 512} {
		idx := make([]int, bw)
		for j := range idx {
			idx[j] = j
		}
		sub := vecmath.SelectColumns(wideX, idx)
		var perQuery [2]int64
		var sweeps int
		for i, ct := range []int{-1, 0} {
			p := params
			p.ColTile = ct
			_, st, err := diffuse.RunSignal(diffuse.EngineParallel, tr, diffuse.NewSignal(sub), p, seed)
			if err != nil {
				return fmt.Errorf("batch_wide B=%d coltile=%d: %w", bw, ct, err)
			}
			sweeps = st.Sweeps // identical on both sides by the tiling contract
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := diffuse.RunSignal(diffuse.EngineParallel, tr, diffuse.NewSignal(sub), p, seed); err != nil {
						b.Fatal(err)
					}
				}
			})
			perQuery[i] = res.NsPerOp() / int64(bw)
		}
		wr := batchWideResult{
			Batch:             bw,
			Engine:            "parallel",
			TileWidth:         diffuse.AutoTileWidth(nodes, bw),
			UntiledNsPerQuery: perQuery[0],
			TiledNsPerQuery:   perQuery[1],
			Sweeps:            sweeps,
		}
		if wr.TiledNsPerQuery > 0 {
			wr.Speedup = float64(wr.UntiledNsPerQuery) / float64(wr.TiledNsPerQuery)
		}
		fmt.Printf("batchwide-%-4d %12d ns/query untiled %8d ns/query tiled (T=%d, speedup %.2fx)\n",
			wr.Batch, wr.UntiledNsPerQuery, wr.TiledNsPerQuery, wr.TileWidth, wr.Speedup)
		snap.BatchWide = append(snap.BatchWide, wr)
	}

	// GS row: the multi-color Gauss–Seidel engine against the Parallel
	// engine's block-Jacobi rounds on the snapshot's embedding diffusion at
	// the snapshot tolerance. The sweep-count ratio is schedule-structural
	// (GS reads fresher values across color-class barriers), so it
	// transfers across hardware; the correctness half compares GS and
	// Synchronous at a tight tolerance, where both are within 1e-10 of the
	// joint fixed point.
	{
		_, gsSt, err := diffuse.Run(diffuse.EngineParallelGS, tr, e0, params, seed)
		if err != nil {
			return fmt.Errorf("gs: %w", err)
		}
		_, parSt, err := diffuse.Run(diffuse.EngineParallel, tr, e0, params, seed)
		if err != nil {
			return fmt.Errorf("gs parallel reference: %w", err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := diffuse.Run(diffuse.EngineParallelGS, tr, e0, params, seed); err != nil {
					b.Fatal(err)
				}
			}
		})
		tight := params
		tight.Tol = 1e-10
		gsM, _, err := diffuse.Run(diffuse.EngineParallelGS, tr, e0, tight, seed)
		if err != nil {
			return fmt.Errorf("gs tight: %w", err)
		}
		syncM, _, err := diffuse.Run(diffuse.EngineSync, tr, e0, tight, seed)
		if err != nil {
			return fmt.Errorf("gs sync reference: %w", err)
		}
		var maxErr float64
		for u := 0; u < nodes; u++ {
			gr, sr := gsM.Row(u), syncM.Row(u)
			for j := range gr {
				if d := gr[j] - sr[j]; d > maxErr {
					maxErr = d
				} else if -d > maxErr {
					maxErr = -d
				}
			}
		}
		gr := gsResult{
			Sweeps:         gsSt.Sweeps,
			ParallelRounds: parSt.Sweeps,
			Colors:         tr.Coloring().NumColors(),
			NsPerOp:        res.NsPerOp(),
			MaxErrVsSync:   maxErr,
		}
		if parSt.Sweeps > 0 {
			gr.SweepRatio = float64(gsSt.Sweeps) / float64(parSt.Sweeps)
		}
		fmt.Printf("gs              %12d ns/op  sweeps=%d vs parallel rounds=%d (ratio %.2f) colors=%d err_vs_sync=%.1e\n",
			gr.NsPerOp, gr.Sweeps, gr.ParallelRounds, gr.SweepRatio, gr.Colors, gr.MaxErrVsSync)
		snap.GS = append(snap.GS, gr)
	}

	// Telemetry overhead: the B=8 ScoreBatch bare vs with the sweep
	// observer feeding a live registry. Three interleaved rounds, min on
	// each side, so a clock-speed drift mid-measurement cannot charge the
	// instrumented side for machine noise.
	treg := telemetry.New()
	instReq := req
	instReq.Observer = telemetry.NewDiffusionMetrics(treg)
	batch8 := queries[:8]
	measure := func(r core.DiffusionRequest) int64 {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := net.ScoreBatch(batch8, r); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()
	}
	telem := telemetryResult{Batch: 8}
	for i := 0; i < 3; i++ {
		if ns := measure(req); telem.BaseNsPerQuery == 0 || ns < telem.BaseNsPerQuery {
			telem.BaseNsPerQuery = ns
		}
		if ns := measure(instReq); telem.InstrNsPerQuery == 0 || ns < telem.InstrNsPerQuery {
			telem.InstrNsPerQuery = ns
		}
	}
	telem.BaseNsPerQuery /= int64(telem.Batch)
	telem.InstrNsPerQuery /= int64(telem.Batch)
	telem.OverheadFrac = float64(telem.InstrNsPerQuery-telem.BaseNsPerQuery) /
		float64(telem.BaseNsPerQuery)
	fmt.Printf("telemetry-%-5d %12d ns/query bare %8d ns/query instrumented  overhead=%+.2f%%\n",
		telem.Batch, telem.BaseNsPerQuery, telem.InstrNsPerQuery, 100*telem.OverheadFrac)
	snap.Telemetry = append(snap.Telemetry, telem)

	// ApplyRowAffine kernel evaluation (the ROADMAP profile-guided-kernel
	// item): one full pass over every CSR row at each serving batch width,
	// for the shipped 4-edge unroll and the historical 2-edge kernel it
	// replaced. The snapshot keeps justifying the shipped choice on the
	// recording hardware.
	for _, bw := range []int{1, 8, 64} {
		src := vecmath.NewMatrix(env.Graph.NumNodes(), bw)
		for u := 0; u < env.Graph.NumNodes(); u++ {
			row := src.Row(u)
			for j := range row {
				row[j] = r.Float64()
			}
		}
		e0row := make([]float64, bw)
		dst := make([]float64, bw)
		kernels := []struct {
			name string
			fn   func(dst []float64, u int, coeff float64, src *vecmath.Matrix, tele float64, e0row []float64)
		}{
			{"unroll2", tr.ApplyRowAffine2},
			{"unroll4", tr.ApplyRowAffine},
		}
		for _, k := range kernels {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for u := 0; u < env.Graph.NumNodes(); u++ {
						k.fn(dst, u, 1-alpha, src, alpha, e0row)
					}
				}
			})
			kr := kernelResult{Kernel: k.name, Batch: bw, NsPerOp: res.NsPerOp()}
			fmt.Printf("affine-%s-%-4d %12d ns/op (full CSR pass)\n", k.name, bw, kr.NsPerOp)
			snap.ApplyRowAffine = append(snap.ApplyRowAffine, kr)
		}
	}

	// Serve rows: the admission-controlled coalescing scheduler under
	// closed-loop load, against the per-query (B=1) path on the identical
	// workload. Distinct is sized above the smaller levels' demand so the
	// speedup at low concurrency is batching-only, while the 64-client
	// level also exercises the LRU cache through repeats.
	serveRows, err := expt.ServeLoadSweep(env, expt.ServeConfig{
		M: numDocs, Alpha: alpha, Tol: tol, Workers: workers, Seed: seed,
		Clients: []int{1, 8, 64}, QueriesPerClient: 12, Distinct: 512,
	})
	if err != nil {
		return fmt.Errorf("serve sweep: %w", err)
	}
	for i := 0; i+1 < len(serveRows); i += 2 {
		direct, sched := serveRows[i], serveRows[i+1]
		sr := serveResult{
			Clients:        sched.Clients,
			QPS:            sched.QPS,
			PerQueryQPS:    direct.QPS,
			P50Ns:          sched.P50.Nanoseconds(),
			P99Ns:          sched.P99.Nanoseconds(),
			PerQueryP99Ns:  direct.P99.Nanoseconds(),
			MeanBatch:      sched.MeanBatch,
			CacheHitRate:   sched.CacheHitRate,
			SweepsPerQuery: sched.SweepsPerQuery,
		}
		if direct.QPS > 0 {
			sr.SpeedupVsPerQuery = sched.QPS / direct.QPS
		}
		fmt.Printf("serve-%-5d %10.0f qps (per-query %.0f, speedup %.2fx) p99=%dms mean_batch=%.1f cache_hit=%.2f\n",
			sr.Clients, sr.QPS, sr.PerQueryQPS, sr.SpeedupVsPerQuery,
			sr.P99Ns/1e6, sr.MeanBatch, sr.CacheHitRate)
		snap.Serve = append(snap.Serve, sr)
	}

	// Shard rows: T tenant graphs diffusing concurrently over 4-way
	// partitioned shards on one shared pool, vs the single-CSR status quo.
	// The tenants≥4 serve speedups are the ISSUE-4 acceptance numbers.
	shardRows, err := expt.ShardSweep(env, expt.ShardConfig{
		M: numDocs, Alpha: alpha, Tol: tol, Workers: workers, Seed: seed,
		Shards: []int{4}, Tenants: []int{1, 4, 8},
		Batch: 32, Clients: 8, QueriesPerClient: 12,
	})
	if err != nil {
		return fmt.Errorf("shard sweep: %w", err)
	}
	for _, row := range shardRows {
		sr := shardResult{
			Shards:            row.Shards,
			Tenants:           row.Tenants,
			Partitioner:       row.Partitioner,
			SeqNsPerQuery:     row.SeqNsPerQuery,
			ConcNsPerQuery:    row.ConcNsPerQuery,
			EngineSpeedup:     row.EngineSpeedup,
			CrossFrac:         row.CrossFrac,
			PerQueryQPS:       row.PerQueryQPS,
			MultiQPS:          row.MultiQPS,
			SpeedupVsPerQuery: row.ServeSpeedup,
		}
		fmt.Printf("shard-%dx%-5d %10.0f qps (per-query %.0f, speedup %.2fx) engine %.2fx cross=%.1f%%\n",
			sr.Shards, sr.Tenants, sr.MultiQPS, sr.PerQueryQPS, sr.SpeedupVsPerQuery,
			sr.EngineSpeedup, 100*sr.CrossFrac)
		snap.Shard = append(snap.Shard, sr)
	}

	// Priority rows: the identical mixed 90/10 interactive/bulk load
	// through the FIFO coalescer and the priority scheduler. The effect is
	// structural (interactive queries jump queued bulk bursts instead of
	// waiting out ~BulkBurst/MaxBatch dispatches), so the gain ratio is
	// robust across hardware.
	priorityRows, err := expt.PrioritySweep(env, expt.PriorityConfig{
		M: numDocs, Alpha: alpha, Tol: tol, Workers: workers, Seed: seed,
		Clients: []int{10, 20}, QueriesPerClient: 24,
	})
	if err != nil {
		return fmt.Errorf("priority sweep: %w", err)
	}
	// Pair rows by (Clients, Mode) rather than emission order, so a future
	// change to PrioritySweep's row layout cannot silently mispair the
	// ratios feeding the CI acceptance gate.
	fifoRows := make(map[int]expt.PriorityRow, len(priorityRows))
	for _, row := range priorityRows {
		if row.Mode == "fifo" {
			fifoRows[row.Clients] = row
		}
	}
	for _, pri := range priorityRows {
		if pri.Mode != "priority" {
			continue
		}
		fifo, ok := fifoRows[pri.Clients]
		if !ok {
			return fmt.Errorf("priority sweep: no fifo baseline row for clients=%d", pri.Clients)
		}
		pr := priorityResult{
			Clients:          fifo.Clients,
			FifoQPS:          fifo.QPS,
			PriorityQPS:      pri.QPS,
			FifoIntP99Ns:     fifo.IntP99.Nanoseconds(),
			PriorityIntP99Ns: pri.IntP99.Nanoseconds(),
			FifoBulkP99Ns:    fifo.BulkP99.Nanoseconds(),
			PriorityBulkP99N: pri.BulkP99.Nanoseconds(),
			MeanBatchFifo:    fifo.MeanBatch,
			MeanBatchPri:     pri.MeanBatch,
		}
		if fifo.QPS > 0 {
			pr.QPSRatio = pri.QPS / fifo.QPS
		}
		if pri.IntP99 > 0 {
			pr.IntP99Gain = float64(fifo.IntP99) / float64(pri.IntP99)
		}
		fmt.Printf("priority-%-3d int_p99 %dms→%dms (gain %.2fx) qps %.0f→%.0f (ratio %.2f)\n",
			pr.Clients, pr.FifoIntP99Ns/1e6, pr.PriorityIntP99Ns/1e6, pr.IntP99Gain,
			pr.FifoQPS, pr.PriorityQPS, pr.QPSRatio)
		snap.Priority = append(snap.Priority, pr)
	}

	// Walk-index rows: the segment store vs the cold CSR per-query path at
	// a partial and a full budget. The full-budget speedup is the ISSUE-6
	// acceptance number (warm ≤ 0.25× cold).
	wiRows, err := expt.WalkIndexSweep(env, expt.WalkIndexConfig{
		M: numDocs, Alpha: alpha, Tol: tol, Workers: workers, Seed: seed,
		BudgetFracs: []float64{0.25, 1},
	})
	if err != nil {
		return fmt.Errorf("walkindex sweep: %w", err)
	}
	for _, row := range wiRows {
		wr := walkIndexResult{
			BudgetFrac:     row.BudgetFrac,
			BudgetBytes:    row.BudgetBytes,
			StoreBytes:     row.StoreBytes,
			BytesPerNode:   row.BytesPerNode,
			Coverage:       row.Coverage,
			BuildNs:        row.BuildNs,
			ColdNsPerQuery: row.ColdNsPerQuery,
			WarmNsPerQuery: row.WarmNsPerQuery,
			Speedup:        row.Speedup,
			MaxErrVsCSR:    row.MaxErr,
		}
		fmt.Printf("walkindex-%.2f %10d ns/query warm (cold %d, speedup %.2fx) coverage=%.2f %.0f B/node build=%dms err=%.1e\n",
			wr.BudgetFrac, wr.WarmNsPerQuery, wr.ColdNsPerQuery, wr.Speedup,
			wr.Coverage, wr.BytesPerNode, wr.BuildNs/1e6, wr.MaxErrVsCSR)
		snap.WalkIndex = append(snap.WalkIndex, wr)
	}

	// Topk rows: the bidirectional certified ranked path vs the
	// full-vector ScoreBatch baseline on the CSR backend. The k=10
	// speedup is the ISSUE-7 acceptance number, and agreement must be
	// exactly 1.0 on every row (the path is exact, certificate or not).
	topkRows, err := expt.TopKSweep(env, expt.TopKConfig{
		M: numDocs, Alpha: alpha, Tol: tol, Workers: workers, Seed: seed,
		Engines: []diffuse.Engine{diffuse.EngineParallel},
		Ks:      []int{1, 10, 25},
	})
	if err != nil {
		return fmt.Errorf("topk sweep: %w", err)
	}
	for _, row := range topkRows {
		tr := topKResult{
			K:              row.K,
			FullNsPerQuery: row.FullNsPerQuery,
			TopKNsPerQuery: row.TopKNsPerQuery,
			Speedup:        row.Speedup,
			FullMsgsPerQ:   row.FullMsgsPerQ,
			TopKMsgsPerQ:   row.TopKMsgsPerQ,
			Certified:      row.Certified,
			Agreement:      row.Agreement,
		}
		fmt.Printf("topk-%-5d %12d ns/query (full %d, speedup %.2fx) certified=%.2f agree=%.2f msgs/q %.0f vs %.0f\n",
			tr.K, tr.TopKNsPerQuery, tr.FullNsPerQuery, tr.Speedup,
			tr.Certified, tr.Agreement, tr.TopKMsgsPerQ, tr.FullMsgsPerQ)
		snap.TopK = append(snap.TopK, tr)
	}

	// Fanout rows: the bloom-routed walk vs the unrouted greedy walk on the
	// deterministic protocol harness (counts, not timings — bit-reproducible
	// in the seed). The bits=1024 row carries the ISSUE-10 acceptance
	// numbers: messages/query ≤ 0.7× unrouted with recall ratio ≥ 1.0.
	fanoutRows, err := expt.FanoutSweep(env, expt.FanoutConfig{
		M: numDocs, Alpha: alpha, Seed: seed,
		BitsGrid: []int{256, 1024, 4096},
	})
	if err != nil {
		return fmt.Errorf("fanout sweep: %w", err)
	}
	for _, row := range fanoutRows {
		fr := fanoutResult{
			Bits:             row.Bits,
			FilterBytes:      row.FilterBytes,
			GossipRounds:     row.GossipRounds,
			UnroutedMsgsPerQ: row.UnroutedMsgsPerQ,
			RoutedMsgsPerQ:   row.RoutedMsgsPerQ,
			MsgRatio:         row.MsgRatio,
			UnroutedRecall:   row.UnroutedRecall,
			RoutedRecall:     row.RoutedRecall,
			RecallRatio:      row.RecallRatio,
			HitsPerQ:         row.HitsPerQ,
			EarlyStopFrac:    row.EarlyStopFrac,
		}
		fmt.Printf("fanout-%-6d %8.1f msgs/query routed (unrouted %.1f, ratio %.2f) recall %.2f vs %.2f (ratio %.2f) stops=%.2f\n",
			fr.Bits, fr.RoutedMsgsPerQ, fr.UnroutedMsgsPerQ, fr.MsgRatio,
			fr.RoutedRecall, fr.UnroutedRecall, fr.RecallRatio, fr.EarlyStopFrac)
		snap.Fanout = append(snap.Fanout, fr)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if baseline != "" {
		return checkRegression(baseline, snap, maxRegress)
	}
	return nil
}

// cpuModel reports the recording machine's CPU model string (linux
// /proc/cpuinfo), or "" where unavailable. Informational only — the
// regression gate never keys on it.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(rest, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// checkRegression gates the Parallel-engine rows of a fresh snapshot
// against a committed baseline (the ROADMAP perf-tracking item). Allocs
// are compared absolutely — machine-independent because both snapshots
// must use the same pinned worker count. Wall-clock is compared two ways:
// through ratios (the parallel engine's speed relative to the async
// reference, ScoreBatch's amortization relative to sequential scoring),
// which transfer across runner hardware only loosely (more cores
// naturally raise both ratios, so they catch gross regressions, not
// subtle ones); and absolutely via ns/op whenever the baseline was
// recorded on matching goos/goarch/gomaxprocs — regenerate the committed
// baseline on CI-like hardware to arm the tight check.
func checkRegression(baselinePath string, fresh snapshot, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	// Workers is part of the configuration: Parallel-engine allocs/op scale
	// with the pool size, so absolute alloc comparisons are only meaningful
	// at the same pinned worker count (results are deterministic across
	// worker counts, so pinning is free).
	if base.Nodes != fresh.Nodes || base.Docs != fresh.Docs || base.Alpha != fresh.Alpha ||
		base.Tol != fresh.Tol || base.Workers != fresh.Workers || base.Seed != fresh.Seed {
		return fmt.Errorf("baseline %s measured a different configuration (nodes=%d docs=%d alpha=%g tol=%g workers=%d seed=%d, fresh nodes=%d docs=%d alpha=%g tol=%g workers=%d seed=%d)",
			baselinePath, base.Nodes, base.Docs, base.Alpha, base.Tol, base.Workers, base.Seed,
			fresh.Nodes, fresh.Docs, fresh.Alpha, fresh.Tol, fresh.Workers, fresh.Seed)
	}
	sameHardware := base.GOOS == fresh.GOOS && base.GOARCH == fresh.GOARCH && base.GOMAXPROCS == fresh.GOMAXPROCS
	var problems []string
	baseEngines := make(map[string]engineResult, len(base.Engines))
	for _, er := range base.Engines {
		baseEngines[er.Engine] = er
	}
	for _, er := range fresh.Engines {
		if er.Engine != "parallel" {
			continue
		}
		b, ok := baseEngines[er.Engine]
		if !ok {
			continue
		}
		if b.AllocsPerOp > 0 && float64(er.AllocsPerOp) > float64(b.AllocsPerOp)*(1+maxRegress) {
			problems = append(problems, fmt.Sprintf("engine %s: allocs/op %d vs baseline %d", er.Engine, er.AllocsPerOp, b.AllocsPerOp))
		}
		if b.SpeedupVsAsync > 0 && er.SpeedupVsAsync < b.SpeedupVsAsync*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf("engine %s: speedup vs async %.2fx vs baseline %.2fx (ns/op regression)",
				er.Engine, er.SpeedupVsAsync, b.SpeedupVsAsync))
		}
		if sameHardware && b.NsPerOp > 0 && float64(er.NsPerOp) > float64(b.NsPerOp)*(1+maxRegress) {
			problems = append(problems, fmt.Sprintf("engine %s: %d ns/op vs baseline %d (same hardware)",
				er.Engine, er.NsPerOp, b.NsPerOp))
		}
	}
	baseBatch := make(map[int]batchResult, len(base.ScoreBatch))
	for _, br := range base.ScoreBatch {
		baseBatch[br.Batch] = br
	}
	for _, br := range fresh.ScoreBatch {
		b, ok := baseBatch[br.Batch]
		if !ok {
			continue
		}
		if b.AllocsPerOp > 0 && float64(br.AllocsPerOp) > float64(b.AllocsPerOp)*(1+maxRegress) {
			problems = append(problems, fmt.Sprintf("scorebatch B=%d: allocs/op %d vs baseline %d", br.Batch, br.AllocsPerOp, b.AllocsPerOp))
		}
		if b.SpeedupVsSequential > 0 && br.SpeedupVsSequential < b.SpeedupVsSequential*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf("scorebatch B=%d: speedup vs sequential %.2fx vs baseline %.2fx (ns/query regression)",
				br.Batch, br.SpeedupVsSequential, b.SpeedupVsSequential))
		}
		if sameHardware && b.NsPerQuery > 0 && float64(br.NsPerQuery) > float64(b.NsPerQuery)*(1+maxRegress) {
			problems = append(problems, fmt.Sprintf("scorebatch B=%d: %d ns/query vs baseline %d (same hardware)",
				br.Batch, br.NsPerQuery, b.NsPerQuery))
		}
	}
	// Wide-batch rows carry an absolute bar on top of the regression
	// comparison: at B=512 the auto-tiled path must beat the legacy
	// untiled path by ≥1.3× ns/query — a within-run ratio (both sides
	// measured back-to-back on identical inputs producing bit-identical
	// outputs), so the bar transfers across hardware. Rows absent from the
	// baseline (first snapshot after tiling landed) still face the
	// absolute bar.
	const (
		wideAcceptanceB     = 512
		minWideTiledSpeedup = 1.3
	)
	baseWide := make(map[int]batchWideResult, len(base.BatchWide))
	for _, wr := range base.BatchWide {
		baseWide[wr.Batch] = wr
	}
	for _, wr := range fresh.BatchWide {
		if wr.Batch == wideAcceptanceB && wr.Speedup < minWideTiledSpeedup {
			problems = append(problems, fmt.Sprintf("batch_wide B=%d: tiled speedup %.2fx vs untiled, want ≥ %.1fx",
				wr.Batch, wr.Speedup, minWideTiledSpeedup))
		}
		if b, ok := baseWide[wr.Batch]; ok && b.Speedup > 0 && wr.Speedup < b.Speedup*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf("batch_wide B=%d: tiled speedup %.2fx vs baseline %.2fx",
				wr.Batch, wr.Speedup, b.Speedup))
		}
	}
	// The GS row carries two absolute bars: the multi-color schedule must
	// realize Gauss–Seidel's convergence advantage (sweeps ≤ 0.8× the
	// Parallel engine's block-Jacobi rounds at the same tolerance — a
	// structural property of the schedules, hardware-independent), and its
	// tight-tolerance scores must agree with the Synchronous reference to
	// 1e-9 (the determinism/correctness half of the contract).
	const (
		maxGSSweepRatio = 0.8
		maxGSErrVsSync  = 1e-9
	)
	for _, gr := range fresh.GS {
		if gr.SweepRatio > maxGSSweepRatio {
			problems = append(problems, fmt.Sprintf("gs: %d sweeps vs %d parallel rounds (ratio %.2f), want ≤ %.1f",
				gr.Sweeps, gr.ParallelRounds, gr.SweepRatio, maxGSSweepRatio))
		}
		if gr.MaxErrVsSync > maxGSErrVsSync {
			problems = append(problems, fmt.Sprintf("gs: max score error %.1e vs the Synchronous reference, want ≤ %.0e",
				gr.MaxErrVsSync, maxGSErrVsSync))
		}
	}
	// Serve rows gate on the coalescing speedup over the per-query path
	// only: it is a within-run ratio (both sides measured back-to-back on
	// the same machine) and stable across runs, whereas the recorded p99
	// is the tail of ~10² closed-loop samples — run-to-run noise exceeds
	// any sensible gate even on identical hardware, so latency quantiles
	// are informational. Rows absent from the baseline (first snapshot
	// after the scheduler landed) are skipped.
	baseServe := make(map[int]serveResult, len(base.Serve))
	for _, sr := range base.Serve {
		baseServe[sr.Clients] = sr
	}
	for _, sr := range fresh.Serve {
		b, ok := baseServe[sr.Clients]
		if !ok {
			continue
		}
		if b.SpeedupVsPerQuery > 0 && sr.SpeedupVsPerQuery < b.SpeedupVsPerQuery*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf("serve clients=%d: speedup vs per-query %.2fx vs baseline %.2fx",
				sr.Clients, sr.SpeedupVsPerQuery, b.SpeedupVsPerQuery))
		}
	}
	// Shard rows gate like serve rows: on the within-run speedup of the
	// multi-tenant path over the per-query single-CSR path (both sides
	// measured back-to-back on the same machine, so the ratio transfers
	// across hardware), not on absolute QPS or the engine overlap ratio
	// (which legitimately tracks the runner's core count). Rows absent from
	// the baseline (first snapshot after sharding landed) are skipped.
	type shardKey struct {
		shards, tenants int
		partitioner     string
	}
	baseShard := make(map[shardKey]shardResult, len(base.Shard))
	for _, sr := range base.Shard {
		baseShard[shardKey{sr.Shards, sr.Tenants, sr.Partitioner}] = sr
	}
	for _, sr := range fresh.Shard {
		b, ok := baseShard[shardKey{sr.Shards, sr.Tenants, sr.Partitioner}]
		if !ok {
			continue
		}
		if b.SpeedupVsPerQuery > 0 && sr.SpeedupVsPerQuery < b.SpeedupVsPerQuery*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf("shard %dx%d: speedup vs per-query %.2fx vs baseline %.2fx",
				sr.Shards, sr.Tenants, sr.SpeedupVsPerQuery, b.SpeedupVsPerQuery))
		}
	}
	// Priority rows carry an absolute acceptance bar on top of the
	// usual regression comparison: the priority scheduler must beat the
	// FIFO coalescer's interactive p99 by ≥1.5× under the mixed load
	// while keeping total QPS within 10% — both within-run ratios (FIFO
	// and priority measured back-to-back on the same machine), so the bar
	// transfers across hardware. Rows absent from the baseline (first
	// snapshot after priority scheduling landed) still face the absolute
	// bar.
	const (
		minIntP99Gain = 1.5
		minQPSRatio   = 0.9
	)
	basePriority := make(map[int]priorityResult, len(base.Priority))
	for _, pr := range base.Priority {
		basePriority[pr.Clients] = pr
	}
	for _, pr := range fresh.Priority {
		if pr.IntP99Gain < minIntP99Gain {
			problems = append(problems, fmt.Sprintf("priority clients=%d: interactive p99 gain %.2fx vs FIFO, want ≥ %.1fx",
				pr.Clients, pr.IntP99Gain, minIntP99Gain))
		}
		if pr.QPSRatio < minQPSRatio {
			problems = append(problems, fmt.Sprintf("priority clients=%d: QPS ratio %.2f vs FIFO, want ≥ %.1f",
				pr.Clients, pr.QPSRatio, minQPSRatio))
		}
		if b, ok := basePriority[pr.Clients]; ok && b.IntP99Gain > 0 &&
			pr.IntP99Gain < b.IntP99Gain*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf("priority clients=%d: interactive p99 gain %.2fx vs baseline %.2fx",
				pr.Clients, pr.IntP99Gain, b.IntP99Gain))
		}
	}
	// Walk-index rows carry two absolute bars on top of the regression
	// comparison: the full-coverage row's warm-vs-cold speedup must reach
	// 4× (warm ≤ 0.25× cold — a within-run ratio, both sides measured
	// back-to-back, so it transfers across hardware), and every row's
	// error vs the exact CSR backend must stay within the snapshot's
	// request tolerance (the correctness half of the contract: budgets cost
	// speed, never accuracy). Rows absent from the baseline (first
	// snapshot after the index landed) still face the absolute bars.
	const minWalkIndexSpeedup = 4.0
	baseWalk := make(map[float64]walkIndexResult, len(base.WalkIndex))
	for _, wr := range base.WalkIndex {
		baseWalk[wr.BudgetFrac] = wr
	}
	for _, wr := range fresh.WalkIndex {
		if wr.Coverage >= 1 && wr.Speedup < minWalkIndexSpeedup {
			problems = append(problems, fmt.Sprintf("walkindex frac=%.2f: warm speedup %.2fx vs cold, want ≥ %.1fx at full coverage",
				wr.BudgetFrac, wr.Speedup, minWalkIndexSpeedup))
		}
		if fresh.Tol > 0 && wr.MaxErrVsCSR > fresh.Tol {
			problems = append(problems, fmt.Sprintf("walkindex frac=%.2f: max error %.1e vs CSR beyond tol %.1e",
				wr.BudgetFrac, wr.MaxErrVsCSR, fresh.Tol))
		}
		if b, ok := baseWalk[wr.BudgetFrac]; ok && b.Speedup > 0 &&
			wr.Coverage >= 1 && wr.Speedup < b.Speedup*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf("walkindex frac=%.2f: warm speedup %.2fx vs baseline %.2fx",
				wr.BudgetFrac, wr.Speedup, b.Speedup))
		}
	}
	// Topk rows carry two absolute bars on top of the regression
	// comparison: agreement with the exact full-vector top-k must be 1.0
	// on every row (the ranked contract — certified early stop or
	// full-convergence fallback, never an approximation), and the k=10
	// row's certified path must run ≥2× faster per query than the
	// full-vector baseline (a within-run ratio, both sides measured
	// back-to-back, so it transfers across hardware). Rows absent from
	// the baseline (first snapshot after the ranked path landed) still
	// face the absolute bars.
	const (
		topKAcceptanceK  = 10
		minTopKSpeedup   = 2.0
		minTopKAgreement = 1.0
	)
	baseTopK := make(map[int]topKResult, len(base.TopK))
	for _, tr := range base.TopK {
		baseTopK[tr.K] = tr
	}
	for _, tr := range fresh.TopK {
		if tr.Agreement < minTopKAgreement {
			problems = append(problems, fmt.Sprintf("topk k=%d: agreement %.3f with the full-vector top-k, want exactly 1.0",
				tr.K, tr.Agreement))
		}
		if tr.K == topKAcceptanceK && tr.Speedup < minTopKSpeedup {
			problems = append(problems, fmt.Sprintf("topk k=%d: speedup %.2fx vs full-vector ScoreBatch, want ≥ %.1fx",
				tr.K, tr.Speedup, minTopKSpeedup))
		}
		if b, ok := baseTopK[tr.K]; ok && b.Speedup > 0 && tr.Speedup < b.Speedup*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf("topk k=%d: speedup %.2fx vs baseline %.2fx",
				tr.K, tr.Speedup, b.Speedup))
		}
	}
	// Fanout rows carry two absolute bars on top of the regression
	// comparison: at the deployment default filter size the routed walk must
	// spend ≤0.7× the unrouted walk's messages/query, and it must find the
	// gold document at least as often (recall ratio ≥ 1.0). Both sides are
	// counted in one deterministic simulation, so the bars hold bit-exactly
	// on any hardware. The regression half compares the message reduction
	// (1 − ratio) against the committed row so the routed walk cannot
	// quietly give back the savings. Rows absent from the baseline (first
	// snapshot after routing landed) still face the absolute bars.
	baseFanout := make(map[int]fanoutResult, len(base.Fanout))
	for _, fr := range base.Fanout {
		baseFanout[fr.Bits] = fr
	}
	for _, fr := range fresh.Fanout {
		if fr.Bits == fanoutAcceptanceBits {
			if fr.MsgRatio > maxFanoutMsgRatio {
				problems = append(problems, fmt.Sprintf("fanout bits=%d: routed messages/query ratio %.2f vs unrouted, want ≤ %.1f",
					fr.Bits, fr.MsgRatio, maxFanoutMsgRatio))
			}
			if fr.RecallRatio < minFanoutRecallRatio {
				problems = append(problems, fmt.Sprintf("fanout bits=%d: recall ratio %.2f vs unrouted, want ≥ %.1f",
					fr.Bits, fr.RecallRatio, minFanoutRecallRatio))
			}
		}
		if b, ok := baseFanout[fr.Bits]; ok {
			baseSaved, saved := 1-b.MsgRatio, 1-fr.MsgRatio
			if baseSaved > 0 && saved < baseSaved*(1-maxRegress) {
				problems = append(problems, fmt.Sprintf("fanout bits=%d: message reduction %.0f%% vs baseline %.0f%%",
					fr.Bits, 100*saved, 100*baseSaved))
			}
			if b.RecallRatio > 0 && fr.RecallRatio < b.RecallRatio*(1-maxRegress) {
				problems = append(problems, fmt.Sprintf("fanout bits=%d: recall ratio %.2f vs baseline %.2f",
					fr.Bits, fr.RecallRatio, b.RecallRatio))
			}
		}
	}
	// The telemetry row's bar is purely absolute: overhead is a within-run
	// ratio (bare and instrumented ScoreBatch measured interleaved), so no
	// baseline row is consulted and the bar holds on any hardware.
	for _, tr := range fresh.Telemetry {
		if tr.OverheadFrac > maxTelemetryOverhead {
			problems = append(problems, fmt.Sprintf("telemetry B=%d: instrumentation overhead %.1f%% ns/query, want ≤ %.0f%%",
				tr.Batch, 100*tr.OverheadFrac, 100*maxTelemetryOverhead))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("gated benchmark rows (parallel engine / scorebatch / batch_wide / gs / serve / shard / priority / walkindex / topk / fanout / telemetry) regressed beyond %.0f%% of %s:\n  %s",
			maxRegress*100, baselinePath, strings.Join(problems, "\n  "))
	}
	mode := "ratio checks only — baseline hardware differs"
	if sameHardware {
		mode = "ratio + absolute ns checks"
	}
	fmt.Printf("regression gate passed against %s (max allowed %.0f%%, %s)\n", baselinePath, maxRegress*100, mode)
	return nil
}
