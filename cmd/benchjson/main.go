// Command benchjson measures the diffusion engines on the paper's workload
// (a scaled environment with a realistic document placement, so E0 is the
// sparse personalization matrix) and writes a machine-readable snapshot
// (BENCH_diffuse.json) so CI can track the perf trajectory of the hottest
// path.
//
// Three drivers are timed on the identical input: the seed repo's
// goroutine-per-node "concurrent" driver (preserved in seedref.go as the
// baseline the Parallel engine replaced), the deterministic Asynchronous
// reference, and the residual-driven Parallel engine. Speedups are reported
// against both baselines; gomaxprocs records how many cores the snapshot
// machine offered (the Parallel engine's scaling headroom).
//
// Usage:
//
//	benchjson -scale 0.25 -docs 500 -alpha 0.5 -seed 42 -out BENCH_diffuse.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"diffusearch/internal/core"
	"diffusearch/internal/diffuse"
	"diffusearch/internal/expt"
	"diffusearch/internal/randx"
	"diffusearch/internal/retrieval"
)

type engineResult struct {
	Engine         string  `json:"engine"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	Sweeps         int     `json:"sweeps,omitempty"`
	Updates        int64   `json:"updates"`
	Messages       int64   `json:"messages"`
	SpeedupVsSeed  float64 `json:"speedup_vs_seed"`
	SpeedupVsAsync float64 `json:"speedup_vs_async"`
}

type snapshot struct {
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Nodes      int            `json:"nodes"`
	Edges      int            `json:"edges"`
	Docs       int            `json:"docs"`
	Dim        int            `json:"dim"`
	Alpha      float64        `json:"alpha"`
	Tol        float64        `json:"tol"`
	Seed       uint64         `json:"seed"`
	Engines    []engineResult `json:"engines"`
}

func main() {
	var (
		scale = flag.Float64("scale", 0.25, "environment scale in (0,1]")
		docs  = flag.Int("docs", 500, "documents placed (gold + irrelevant pool)")
		alpha = flag.Float64("alpha", 0.5, "PPR teleport probability")
		tol   = flag.Float64("tol", 1e-6, "convergence tolerance")
		seed  = flag.Uint64("seed", 42, "master seed")
		out   = flag.String("out", "BENCH_diffuse.json", "output path")
	)
	flag.Parse()
	if err := run(*scale, *docs, *alpha, *tol, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(scale float64, numDocs int, alpha, tol float64, seed uint64, out string) error {
	env, err := expt.NewEnvironment(expt.ScaledParams(seed, scale))
	if err != nil {
		return err
	}
	if numDocs > env.MaxPoolDocs() {
		numDocs = env.MaxPoolDocs()
	}
	net := core.NewNetwork(env.Graph, env.Bench.Vocabulary())
	r := randx.Derive(seed, "benchjson")
	pair := env.Bench.SamplePair(r)
	docs := append([]retrieval.DocID{pair.Gold}, env.Bench.SamplePool(r, numDocs-1)...)
	if err := net.PlaceDocuments(docs, core.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
		return err
	}
	if err := net.ComputePersonalization(); err != nil {
		return err
	}
	e0 := net.PersonalizationMatrix()
	tr := net.Transition()
	params := diffuse.Params{Alpha: alpha, Tol: tol}

	snap := snapshot{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Nodes:      env.Graph.NumNodes(),
		Edges:      env.Graph.NumEdges(),
		Docs:       numDocs,
		Dim:        e0.Cols(),
		Alpha:      alpha,
		Tol:        tol,
		Seed:       seed,
	}

	type driver struct {
		name string
		fn   func() (diffuse.Stats, error)
	}
	drivers := []driver{
		{"seed-concurrent", func() (diffuse.Stats, error) {
			_, st, err := seedConcurrent(tr, e0, alpha, tol, 2*time.Minute)
			return st, err
		}},
		{"async", func() (diffuse.Stats, error) {
			_, st, err := diffuse.Run(diffuse.EngineAsynchronous, tr, e0, params, seed)
			return st, err
		}},
		{"parallel", func() (diffuse.Stats, error) {
			_, st, err := diffuse.Run(diffuse.EngineParallel, tr, e0, params, seed)
			return st, err
		}},
	}

	var seedNs, asyncNs int64
	for _, d := range drivers {
		st, err := d.fn()
		if err != nil {
			return fmt.Errorf("driver %s: %w", d.name, err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
		er := engineResult{
			Engine:      d.name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Sweeps:      st.Sweeps,
			Updates:     st.Updates,
			Messages:    st.Messages,
		}
		switch d.name {
		case "seed-concurrent":
			seedNs = er.NsPerOp
		case "async":
			asyncNs = er.NsPerOp
		}
		snap.Engines = append(snap.Engines, er)
	}
	// Cross-speedups need every driver timed first; fill them in one pass.
	for i := range snap.Engines {
		er := &snap.Engines[i]
		if er.NsPerOp <= 0 {
			continue
		}
		er.SpeedupVsSeed = float64(seedNs) / float64(er.NsPerOp)
		er.SpeedupVsAsync = float64(asyncNs) / float64(er.NsPerOp)
		fmt.Printf("%-16s %12d ns/op %10d B/op %8d allocs/op  updates=%d messages=%d speedup_vs_seed=%.2fx\n",
			er.Engine, er.NsPerOp, er.BytesPerOp, er.AllocsPerOp, er.Updates, er.Messages, er.SpeedupVsSeed)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
