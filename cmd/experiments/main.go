// Command experiments regenerates every table and figure of the paper's
// evaluation (§V) plus the repo's ablation extensions (see ROADMAP.md).
//
// Usage:
//
//	experiments -exp fig3                 # Fig. 3a–d (accuracy vs distance)
//	experiments -exp table1               # Table I (hop counts)
//	experiments -exp all                  # everything below
//	experiments -exp parallel|recall|placement|summary|visited|baselines|norm|serve
//	experiments -exp topk                 # bidirectional certified top-k vs full vector
//	experiments -quick                    # scaled-down environment & iterations
//	experiments -seed 7 -iters 200 -csv   # tuning & CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"diffusearch/internal/core"
	"diffusearch/internal/expt"
	"diffusearch/internal/graph"
	"diffusearch/internal/stats"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig3|table1|parallel|recall|placement|summary|visited|baselines|norm|diffusion|batch|serve|shard|priority|walkindex|topk|fanout|all")
		seed  = flag.Uint64("seed", 42, "master seed (all results are deterministic in it)")
		quick = flag.Bool("quick", false, "scaled-down environment and iteration counts")
		iters = flag.Int("iters", 0, "override iteration count (0 = experiment default)")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	if err := run(*exp, *seed, *quick, *iters, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type runner struct {
	env   *expt.Environment
	quick bool
	iters int
	csv   bool
	seed  uint64
}

func run(exp string, seed uint64, quick bool, iters int, csv bool) error {
	start := time.Now()
	params := expt.PaperParams(seed)
	if quick {
		params = expt.ScaledParams(seed, 0.25)
	}
	fmt.Printf("# environment: %d nodes, %d-word vocabulary, %d query/gold pairs (seed %d)\n",
		params.GraphNodes, params.VocabWords, params.NumQueries, seed)
	env, err := expt.NewEnvironment(params)
	if err != nil {
		return err
	}
	fmt.Printf("# built in %v: %d edges, pool %d docs\n\n",
		time.Since(start).Round(time.Millisecond), env.Graph.NumEdges(), env.MaxPoolDocs()-1)

	r := &runner{env: env, quick: quick, iters: iters, csv: csv, seed: seed}
	known := map[string]func() error{
		"fig3":      r.fig3,
		"table1":    r.table1,
		"parallel":  r.parallel,
		"recall":    r.recall,
		"topk":      r.topk,
		"placement": r.placement,
		"summary":   r.summary,
		"visited":   r.visited,
		"baselines": r.baselines,
		"norm":      r.norm,
		"diffusion": r.diffusion,
		"batch":     r.batch,
		"serve":     r.serve,
		"shard":     r.shard,
		"priority":  r.priority,
		"walkindex": r.walkindex,
		"fanout":    r.fanout,
	}
	if exp == "all" {
		for _, name := range []string{"fig3", "table1", "parallel", "recall", "placement", "summary", "visited", "baselines", "norm", "diffusion", "batch", "serve", "shard", "priority", "walkindex", "topk", "fanout"} {
			if err := known[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := known[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want %s|all)", exp, strings.Join(keys(known), "|"))
	}
	return fn()
}

func keys(m map[string]func() error) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func (r *runner) emit(title string, t *stats.Table) {
	fmt.Printf("== %s\n", title)
	if r.csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
	fmt.Println()
}

// figMs returns the document counts per subplot, clamped to the pool.
func (r *runner) figMs() []int {
	all := []int{10, 100, 1000, 10000}
	out := make([]int, 0, len(all))
	for _, m := range all {
		if m <= r.env.MaxPoolDocs() {
			out = append(out, m)
		}
	}
	if len(out) < len(all) {
		fmt.Printf("# note: pool supports only M ≤ %d; larger subplots skipped (use the full-scale env)\n", r.env.MaxPoolDocs())
	}
	return out
}

func (r *runner) itersOr(def, quickDef int) int {
	if r.iters > 0 {
		return r.iters
	}
	if r.quick {
		return quickDef
	}
	return def
}

func (r *runner) fig3() error {
	subplot := 'a'
	for _, m := range r.figMs() {
		start := time.Now()
		res, err := expt.AccuracyByDistance(r.env, expt.AccuracyConfig{
			M:          m,
			Iterations: r.itersOr(200, 40),
			Seed:       r.seed,
		})
		if err != nil {
			return err
		}
		r.emit(fmt.Sprintf("Fig. 3%c — accuracy vs distance, M=%d (TTL %d, %v)",
			subplot, m, res.TTL, time.Since(start).Round(time.Millisecond)), expt.FormatAccuracy(res))
		subplot++
	}
	return nil
}

func (r *runner) table1() error {
	start := time.Now()
	ms := r.figMs()
	rows, err := expt.HopCount(r.env, expt.HopCountConfig{
		Ms:         ms,
		Iterations: r.itersOr(500, 60),
		Seed:       r.seed,
	})
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("Table I — average hop count (α=0.5, TTL 50, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatHopCount(rows))
	return nil
}

func (r *runner) parallel() error {
	rows, err := expt.ComparePolicies(r.env, expt.CompareConfig{
		M: 100, Alpha: 0.5, TTL: 50,
		Iterations: r.itersOr(100, 20), QueriesPerIter: 5, Seed: r.seed,
		Variants: []expt.Variant{
			{Name: "walks-1", Policy: core.GreedyPolicy{Fanout: 1}},
			{Name: "walks-2", Policy: core.GreedyPolicy{Fanout: 2}},
			{Name: "walks-4", Policy: core.GreedyPolicy{Fanout: 4}},
			{Name: "walks-8", Policy: core.GreedyPolicy{Fanout: 8}},
		},
	})
	if err != nil {
		return err
	}
	r.emit("abl-parallel — parallel walks (M=100, α=0.5)", expt.FormatCompare(rows))
	return nil
}

// recall was named topk before the bidirectional scoring path took that
// name: it measures the decentralized walk's recall against the
// centralized engine, not the ranked serving path.
func (r *runner) recall() error {
	rows, err := expt.RecallAtK(r.env, expt.RecallConfig{
		M: 1000, Alpha: 0.5, Ks: []int{1, 5, 10}, TTL: 50,
		Iterations: r.itersOr(200, 40), Seed: r.seed,
	})
	if err != nil {
		return err
	}
	r.emit("abl-recall — top-k recall vs centralized engine (M=1000, α=0.5)", expt.FormatRecall(rows))
	return nil
}

func (r *runner) topk() error {
	start := time.Now()
	cfg := expt.TopKConfig{
		M: 1000, Alpha: 0.5, Seed: r.seed,
		Queries: r.itersOr(16, 6),
	}
	if r.quick {
		cfg.Iters = 2
		cfg.Ks = []int{1, 10}
	}
	rows, err := expt.TopKSweep(r.env, cfg)
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("topk — bidirectional certified top-k vs full-vector ScoreBatch (M=1000, α=0.5, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatTopK(rows))
	return nil
}

func (r *runner) accuracyBase(m int) expt.AccuracyConfig {
	return expt.AccuracyConfig{
		M:          m,
		Alphas:     []float64{0.5},
		Iterations: r.itersOr(150, 30),
		Seed:       r.seed,
	}
}

func (r *runner) placement() error {
	res, err := expt.PlacementAblation(r.env, r.accuracyBase(1000))
	if err != nil {
		return err
	}
	r.emit("abl-placement — uniform vs correlated placement (M=1000, α=0.5)", expt.FormatLabeledAccuracy(res))
	return nil
}

func (r *runner) summary() error {
	res, err := expt.SummarizationAblation(r.env, r.accuracyBase(1000))
	if err != nil {
		return err
	}
	r.emit("abl-summary — personalization summarization (M=1000, α=0.5)", expt.FormatLabeledAccuracy(res))
	return nil
}

func (r *runner) visited() error {
	res, err := expt.VisitedAblation(r.env, r.accuracyBase(100))
	if err != nil {
		return err
	}
	r.emit("abl-visited — visited-avoidance mechanisms (M=100, α=0.5)", expt.FormatLabeledAccuracy(res))
	return nil
}

func (r *runner) baselines() error {
	rows, err := expt.ComparePolicies(r.env, expt.CompareConfig{
		M: 100, Alpha: 0.5, TTL: 50,
		Iterations: r.itersOr(100, 20), QueriesPerIter: 5, Seed: r.seed,
		Variants: expt.BaselineVariants(2),
	})
	if err != nil {
		return err
	}
	r.emit("abl-baselines — PPR walk vs blind walk vs flooding (M=100, α=0.5)", expt.FormatCompare(rows))
	return nil
}

func (r *runner) diffusion() error {
	start := time.Now()
	rows, err := expt.CompareDiffusionEngines(r.env, expt.DiffusionConfig{
		M: 1000, Alpha: 0.5, Seed: r.seed,
	})
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("diffusion — engine comparison on identical E0 (M=1000, α=0.5, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatDiffusion(rows))
	return nil
}

func (r *runner) batch() error {
	start := time.Now()
	rows, err := expt.BatchScaling(r.env, expt.BatchConfig{
		M: 1000, Alpha: 0.5, Seed: r.seed,
	})
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("batch — ScoreBatch amortization on the Parallel engine (M=1000, α=0.5, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatBatch(rows))
	return nil
}

func (r *runner) serve() error {
	start := time.Now()
	rows, err := expt.ServeLoadSweep(r.env, expt.ServeConfig{
		M: 1000, Alpha: 0.5, Seed: r.seed,
		QueriesPerClient: r.itersOr(25, 8),
	})
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("serve — coalescing scheduler vs per-query scoring under closed-loop load (M=1000, α=0.5, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatServe(rows))
	return nil
}

func (r *runner) shard() error {
	start := time.Now()
	cfg := expt.ShardConfig{
		M: 500, Alpha: 0.5, Seed: r.seed,
		QueriesPerClient: r.itersOr(10, 4),
	}
	if r.quick {
		cfg.Batch = 16
		cfg.Clients = 4
	}
	rows, err := expt.ShardSweep(r.env, cfg)
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("shard — sharded multi-tenant environments vs single CSR (M=500, α=0.5, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatShard(rows))
	return nil
}

func (r *runner) priority() error {
	start := time.Now()
	cfg := expt.PriorityConfig{
		M: 1000, Alpha: 0.5, Seed: r.seed,
		QueriesPerClient: r.itersOr(24, 8),
	}
	if r.quick {
		cfg.Clients = []int{10}
	}
	rows, err := expt.PrioritySweep(r.env, cfg)
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("priority — deadline-aware classes vs FIFO coalescing under mixed 90/10 load (M=1000, α=0.5, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatPriority(rows))
	return nil
}

func (r *runner) walkindex() error {
	start := time.Now()
	cfg := expt.WalkIndexConfig{
		M: 500, Alpha: 0.5, Seed: r.seed,
		Queries: r.itersOr(16, 6),
	}
	if r.quick {
		cfg.Iters = 2
	}
	rows, err := expt.WalkIndexSweep(r.env, cfg)
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("walkindex — precomputed PPR segment store: budget vs speedup vs accuracy (M=500, α=0.5, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatWalkIndex(rows))
	return nil
}

func (r *runner) fanout() error {
	start := time.Now()
	cfg := expt.FanoutConfig{
		M: 500, Alpha: 0.5, Seed: r.seed,
		Queries: r.itersOr(64, 16),
	}
	if r.quick {
		cfg.BitsGrid = []int{1024}
	}
	rows, err := expt.FanoutSweep(r.env, cfg)
	if err != nil {
		return err
	}
	r.emit(fmt.Sprintf("fanout — bloom-routed walk vs unrouted greedy walk on the protocol harness (M=500, α=0.5, TTL 50, %v)",
		time.Since(start).Round(time.Millisecond)), expt.FormatFanout(rows))
	return nil
}

func (r *runner) norm() error {
	res, err := expt.NormalizationAblation(r.env, r.accuracyBase(100))
	if err != nil {
		return err
	}
	_ = graph.ColumnStochastic // documented default
	r.emit("abl-norm — transition normalization (M=100, α=0.5)", expt.FormatLabeledAccuracy(res))
	return nil
}
