// Command dfsearch runs one end-to-end decentralized search demo: generate
// the network and corpus, place documents, diffuse embeddings with the
// selected PPR engine, then walk a query and print the trace. With
// -topk N the demo also answers the query through the bidirectional
// certified top-k path and prints the ranked document hosts.
//
// Usage:
//
//	dfsearch -nodes 1000 -docs 500 -alpha 0.5 -ttl 50 -seed 42 -engine parallel -topk 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"diffusearch"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 1000, "P2P network size")
		docs    = flag.Int("docs", 500, "documents stored in the network (1 gold + rest irrelevant)")
		alpha   = flag.Float64("alpha", 0.5, "PPR teleport probability")
		ttl     = flag.Int("ttl", 50, "query hop budget")
		seed    = flag.Uint64("seed", 42, "master seed")
		k       = flag.Int("k", 3, "tracked results per query")
		engine  = flag.String("engine", "parallel", "diffusion engine: async|parallel|sync|gs")
		workers = flag.Int("workers", 0, "parallel engine pool size (0 = GOMAXPROCS)")
		topk    = flag.Int("topk", 0, "also rank the top N document hosts through the certified top-k path (0 disables)")
	)
	flag.Parse()
	if err := run(*nodes, *docs, *alpha, *ttl, *seed, *k, *engine, *workers, *topk); err != nil {
		fmt.Fprintln(os.Stderr, "dfsearch:", err)
		os.Exit(1)
	}
}

func run(nodes, docs int, alpha float64, ttl int, seed uint64, k int, engine string, workers, topk int) error {
	eng, err := diffusearch.ParseEngine(engine)
	if err != nil {
		return err
	}
	scale := float64(nodes) / 4039
	env, err := diffusearch.NewScaledEnvironment(seed, scale)
	if err != nil {
		return err
	}
	g := env.Graph
	fmt.Printf("network: %d nodes, %d edges (avg degree %.1f)\n", g.NumNodes(), g.NumEdges(), g.AverageDegree())

	if docs > env.MaxPoolDocs() {
		return fmt.Errorf("docs %d exceeds pool capacity %d", docs, env.MaxPoolDocs())
	}
	net := diffusearch.NewNetwork(g, env.Bench.Vocabulary())
	r := diffusearch.NewRand(seed)
	pair := env.Bench.SamplePair(r)
	all := append([]diffusearch.DocID{pair.Gold}, env.Bench.SamplePool(r, docs-1)...)
	if err := net.PlaceDocuments(all, diffusearch.UniformHosts(r, len(all), g.NumNodes())); err != nil {
		return err
	}
	if err := net.ComputePersonalization(); err != nil {
		return err
	}

	start := time.Now()
	st, err := net.Run(diffusearch.DiffusionRequest{
		Engine: eng, Alpha: alpha, Workers: workers, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("diffusion: engine=%v α=%.2f converged after %d sweeps, %d embedding exchanges (%v)\n",
		eng, alpha, st.Sweeps, st.Messages, time.Since(start).Round(time.Millisecond))

	goldHost := net.HostOf(pair.Gold)
	query := env.Bench.Vocabulary().Vector(pair.Query)
	fmt.Printf("query %q, gold document %q stored at node %d\n",
		env.Bench.Vocabulary().Word(pair.Query), env.Bench.Vocabulary().Word(pair.Gold), goldHost)

	if topk > 0 {
		if _, err := diffusearch.AttachTopK(net, diffusearch.TopKConfig{
			Alpha: alpha, Engine: eng, Workers: workers, Seed: seed,
		}); err != nil {
			return err
		}
		res, rst, err := net.ScoreBatchTopK([][]float64{query}, diffusearch.DiffusionRequest{
			Engine: eng, Alpha: alpha, Workers: workers, Seed: seed, TopK: topk,
		})
		if err != nil {
			return err
		}
		mode := "fully converged"
		if res[0].Certified {
			mode = "certified early stop"
		}
		fmt.Printf("top-%d document hosts (%s, %d sweeps):", topk, mode, rst.Sweeps)
		for i, id := range res[0].IDs {
			fmt.Printf(" %d(%.4f)", id, res[0].Scores[i])
		}
		fmt.Println()
	}

	// Walk from several distances away from the gold host.
	groups := g.NodesAtDistance(goldHost, 5)
	for d := 0; d <= 5; d++ {
		if len(groups[d]) == 0 {
			continue
		}
		origin := groups[d][r.IntN(len(groups[d]))]
		out, err := net.RunQuery(origin, query, pair.Gold, diffusearch.QueryConfig{TTL: ttl, K: k, Seed: seed})
		if err != nil {
			return err
		}
		status := "MISS"
		if out.Found {
			status = fmt.Sprintf("HIT after %d hops", out.HopsToGold)
		}
		fmt.Printf("  from node %4d (distance %d): %-18s visited %2d nodes, %3d messages\n",
			origin, d, status, out.Visited, out.Messages)
	}
	return nil
}
