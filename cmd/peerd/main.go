// Command peerd runs one real P2P search peer over TCP — the deployable
// counterpart of the simulation. Peers are configured with a static
// topology file mapping node ids to addresses and neighbour lists; every
// peer regenerates the same corpus from the shared seed, stores the
// documents assigned to its id, gossips PPR embeddings, and answers
// queries.
//
// Topology file format (one peer per line):
//
//	<id> <host:port> <neighbour,neighbour,...> [doc,doc,...]
//
// Example (three peers on one machine):
//
//	0 127.0.0.1:7000 1 12,99
//	1 127.0.0.1:7001 0,2
//	2 127.0.0.1:7002 1 7
//
// Run each in its own terminal:
//
//	peerd -topology net.txt -id 0
//	peerd -topology net.txt -id 1
//	peerd -topology net.txt -id 2 -query w12 -wait 3s
//
// The -query flag issues a search for the embedding of the named word after
// -wait (allowing diffusion to settle) and prints the results.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"diffusearch/internal/embed"
	"diffusearch/internal/graph"
	"diffusearch/internal/peernet"
	"diffusearch/internal/retrieval"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "topology file (required)")
		id       = flag.Int("id", -1, "this peer's node id (required)")
		alpha    = flag.Float64("alpha", 0.5, "PPR teleport probability")
		seed     = flag.Uint64("seed", 42, "shared corpus seed (must match across peers)")
		words    = flag.Int("words", 2000, "shared vocabulary size (must match across peers)")
		dim      = flag.Int("dim", 64, "shared embedding dimension (must match across peers)")
		query    = flag.String("query", "", "issue a query for this word (e.g. w12) and exit")
		ttl      = flag.Int("ttl", 20, "query hop budget")
		k        = flag.Int("k", 3, "tracked results")
		wait     = flag.Duration("wait", 2*time.Second, "diffusion settling time before -query")
	)
	flag.Parse()
	if err := run(*topoPath, *id, *alpha, *seed, *words, *dim, *query, *ttl, *k, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "peerd:", err)
		os.Exit(1)
	}
}

type peerSpec struct {
	addr      string
	neighbors []graph.NodeID
	docs      []retrieval.DocID
}

func run(topoPath string, id int, alpha float64, seed uint64, words, dim int,
	query string, ttl, k int, wait time.Duration) error {
	if topoPath == "" || id < 0 {
		return fmt.Errorf("-topology and -id are required (see -h)")
	}
	specs, err := loadTopology(topoPath)
	if err != nil {
		return err
	}
	spec, ok := specs[id]
	if !ok {
		return fmt.Errorf("id %d not present in %s", id, topoPath)
	}

	vocab, err := embed.Synthetic(embed.SyntheticParams{
		Words: words, Dim: dim, Clusters: max(words/12, 1), Spread: 0.55,
		CommonComponent: 0.6, Seed: seed,
	})
	if err != nil {
		return err
	}

	tr, err := peernet.ListenTCP(id, spec.addr)
	if err != nil {
		return err
	}
	defer tr.Close()
	dir := make(map[graph.NodeID]string, len(specs))
	for pid, s := range specs {
		dir[pid] = s.addr
	}
	tr.SetDirectory(dir)

	peer, err := peernet.NewPeer(peernet.PeerConfig{
		ID:        id,
		Neighbors: spec.neighbors,
		Vocab:     vocab,
		Docs:      spec.docs,
		Alpha:     alpha,
	}, tr)
	if err != nil {
		return err
	}
	peer.Start()
	defer peer.Stop()
	fmt.Printf("peer %d listening on %s (%d neighbours, %d local docs)\n",
		id, tr.Addr(), len(spec.neighbors), len(spec.docs))

	if query != "" {
		time.Sleep(wait)
		w, err := parseWord(query, vocab.Len())
		if err != nil {
			return err
		}
		results, err := peer.Query(vocab.Vector(w), ttl, k, 30*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("query %s returned %d result(s):\n", query, len(results))
		for i, r := range results {
			fmt.Printf("  %d. %s (score %.4f)\n", i+1, vocab.Word(r.Doc), r.Score)
		}
		return nil
	}

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	updates, messages := peer.Stats()
	fmt.Printf("\npeer %d shutting down: %d diffusion updates, %d messages sent\n", id, updates, messages)
	return nil
}

func parseWord(token string, vocabLen int) (retrieval.DocID, error) {
	w, err := strconv.Atoi(strings.TrimPrefix(token, "w"))
	if err != nil || w < 0 || w >= vocabLen {
		return 0, fmt.Errorf("bad word token %q (want w<0..%d>)", token, vocabLen-1)
	}
	return w, nil
}

func loadTopology(path string) (map[int]peerSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open topology: %w", err)
	}
	defer f.Close()
	specs := make(map[int]peerSpec)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: want `<id> <addr> <neighbours> [docs]`", path, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("%s:%d: bad id %q", path, line, fields[0])
		}
		spec := peerSpec{addr: fields[1]}
		if spec.neighbors, err = parseIntList(fields[2]); err != nil {
			return nil, fmt.Errorf("%s:%d: neighbours: %w", path, line, err)
		}
		if len(fields) > 3 {
			if spec.docs, err = parseIntList(fields[3]); err != nil {
				return nil, fmt.Errorf("%s:%d: docs: %w", path, line, err)
			}
		}
		if _, dup := specs[id]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate id %d", path, line, id)
		}
		specs[id] = spec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read topology: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%s: empty topology", path)
	}
	return specs, nil
}

func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
