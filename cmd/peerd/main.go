// Command peerd runs one real P2P search peer over TCP — the deployable
// counterpart of the simulation. Peers are configured with a static
// topology file mapping node ids to addresses and neighbour lists; every
// peer regenerates the same corpus from the shared seed, stores the
// documents assigned to its id, gossips PPR embeddings, and answers
// queries.
//
// Topology file format (one peer per line):
//
//	<id> <host:port> <neighbour,neighbour,...> [doc,doc,...]
//
// Example (three peers on one machine):
//
//	0 127.0.0.1:7000 1 12,99
//	1 127.0.0.1:7001 0,2
//	2 127.0.0.1:7002 1 7
//
// Run each in its own terminal:
//
//	peerd -topology net.txt -id 0
//	peerd -topology net.txt -id 1
//	peerd -topology net.txt -id 2 -query w12 -wait 3s
//
// The -query flag issues a search for the embedding of the named word after
// -wait (allowing diffusion to settle) and prints the results; -batch
// issues several comma-separated words, scored through one batched
// diffusion.
//
// With -engine, the peer serves queries through the unified
// DiffusionRequest API instead of its own gossip-cache scoring: every peer
// can reconstruct the deployment's Network from the shared topology file
// and corpus seed, so forwarding decisions come from a
// core.Network.ScoreBatch on the selected engine (async|parallel|sync),
// and -batch amortizes all of its queries into a single multi-column
// ScoreBatch call before the walks start. Without -engine the peer keeps
// gossip-cache scoring for everything, -batch included.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"diffusearch/internal/core"
	"diffusearch/internal/diffuse"
	"diffusearch/internal/embed"
	"diffusearch/internal/graph"
	"diffusearch/internal/peernet"
	"diffusearch/internal/retrieval"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "topology file (required)")
		id       = flag.Int("id", -1, "this peer's node id (required)")
		alpha    = flag.Float64("alpha", 0.5, "PPR teleport probability")
		seed     = flag.Uint64("seed", 42, "shared corpus seed (must match across peers)")
		words    = flag.Int("words", 2000, "shared vocabulary size (must match across peers)")
		dim      = flag.Int("dim", 64, "shared embedding dimension (must match across peers)")
		query    = flag.String("query", "", "issue a query for this word (e.g. w12) and exit")
		batch    = flag.String("batch", "", "issue a batch of comma-separated words (e.g. w12,w7) and exit; with -engine, the batch is scored in one diffusion first")
		engine   = flag.String("engine", "", "serve queries through the request API on this engine (async|parallel|sync); empty keeps gossip-cache scoring")
		workers  = flag.Int("workers", 0, "parallel engine pool size (0 = GOMAXPROCS)")
		ttl      = flag.Int("ttl", 20, "query hop budget")
		k        = flag.Int("k", 3, "tracked results")
		wait     = flag.Duration("wait", 2*time.Second, "diffusion settling time before -query/-batch")
	)
	flag.Parse()
	cfg := runConfig{
		topoPath: *topoPath, id: *id, alpha: *alpha, seed: *seed,
		words: *words, dim: *dim, query: *query, batch: *batch,
		engine: *engine, workers: *workers, ttl: *ttl, k: *k, wait: *wait,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "peerd:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	topoPath string
	id       int
	alpha    float64
	seed     uint64
	words    int
	dim      int
	query    string
	batch    string
	engine   string
	workers  int
	ttl      int
	k        int
	wait     time.Duration
}

type peerSpec struct {
	addr      string
	neighbors []graph.NodeID
	docs      []retrieval.DocID
}

// scorerCacheCap bounds the score memo: query embeddings arrive over the
// wire from other peers, so an unbounded map would grow with every
// distinct (or adversarial) query a long-running peer forwards. FIFO
// eviction keeps the common case (a hot working set of repeated queries)
// cached while capping memory at cap × n float64s.
const scorerCacheCap = 512

// queryScorer serves per-node relevance scores through the unified request
// API over a mirror of the deployment: peerd peers share the topology file
// and the seeded corpus, so any peer can reconstruct the same Network the
// simulation uses and score queries with ScoreBatch instead of its own
// diffusion call. Scores are memoized per query embedding (bounded, FIFO
// eviction); Prewarm fills the memo for a whole batch with one
// multi-column diffusion.
type queryScorer struct {
	net *core.Network
	req core.DiffusionRequest

	mu    sync.Mutex
	cache map[string][]float64
	order []string // insertion order for FIFO eviction
}

// newQueryScorer mirrors the topology and document placement into a
// Network and resolves the engine flag into the DiffusionRequest that
// every Score/Prewarm call dispatches through.
func newQueryScorer(specs map[int]peerSpec, vocab *embed.Vocabulary,
	engineName string, alpha float64, workers int, seed uint64) (*queryScorer, error) {
	eng, err := diffuse.ParseEngine(engineName)
	if err != nil {
		return nil, err
	}
	n := 0
	for id := range specs {
		if id >= n {
			n = id + 1
		}
	}
	b := graph.NewBuilder(n)
	var docs []retrieval.DocID
	var hosts []graph.NodeID
	for id, spec := range specs {
		for _, v := range spec.neighbors {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("peer %d lists unknown neighbour %d", id, v)
			}
			b.AddEdge(id, v)
		}
		for _, d := range spec.docs {
			docs = append(docs, d)
			hosts = append(hosts, id)
		}
	}
	net := core.NewNetwork(b.Build(), vocab)
	if err := net.PlaceDocuments(docs, hosts); err != nil {
		return nil, err
	}
	if err := net.ComputePersonalization(); err != nil {
		return nil, err
	}
	return &queryScorer{
		net:   net,
		req:   core.DiffusionRequest{Engine: eng, Alpha: alpha, Workers: workers, Seed: seed},
		cache: make(map[string][]float64),
	}, nil
}

// Score returns the per-node relevance scores for one query embedding,
// diffusing through the scorer's request unless memoized.
func (s *queryScorer) Score(query []float64) ([]float64, error) {
	key := scoreKey(query)
	s.mu.Lock()
	cached, ok := s.cache[key]
	s.mu.Unlock()
	if ok {
		return cached, nil
	}
	batch, _, err := s.net.ScoreBatch([][]float64{query}, s.req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.insert(key, batch[0])
	s.mu.Unlock()
	return batch[0], nil
}

// insert memoizes one score column, evicting the oldest entry at capacity.
// Callers must hold s.mu.
func (s *queryScorer) insert(key string, scores []float64) {
	if _, dup := s.cache[key]; !dup {
		for len(s.order) >= scorerCacheCap {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.cache, oldest)
		}
		s.order = append(s.order, key)
	}
	s.cache[key] = scores
}

// Prewarm scores a whole query batch in one multi-column diffusion and
// memoizes the per-query columns, so the subsequent live walks pay no
// further diffusion cost.
func (s *queryScorer) Prewarm(queries [][]float64) (diffuse.Stats, error) {
	batch, st, err := s.net.ScoreBatch(queries, s.req)
	if err != nil {
		return st, err
	}
	s.mu.Lock()
	for j, q := range queries {
		s.insert(scoreKey(q), batch[j])
	}
	s.mu.Unlock()
	return st, nil
}

// scoreKey fingerprints a query embedding for the memo.
func scoreKey(query []float64) string {
	var b strings.Builder
	b.Grow(len(query) * 8)
	for _, x := range query {
		v := math.Float64bits(x)
		for i := 0; i < 64; i += 8 {
			b.WriteByte(byte(v >> i))
		}
	}
	return b.String()
}

func run(cfg runConfig) error {
	if cfg.topoPath == "" || cfg.id < 0 {
		return fmt.Errorf("-topology and -id are required (see -h)")
	}
	specs, err := loadTopology(cfg.topoPath)
	if err != nil {
		return err
	}
	spec, ok := specs[cfg.id]
	if !ok {
		return fmt.Errorf("id %d not present in %s", cfg.id, cfg.topoPath)
	}

	vocab, err := embed.Synthetic(embed.SyntheticParams{
		Words: cfg.words, Dim: cfg.dim, Clusters: max(cfg.words/12, 1), Spread: 0.55,
		CommonComponent: 0.6, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}

	// -engine alone decides the serving mode: -batch without it issues the
	// queries over plain gossip scoring, same as the rest of a deployment
	// that never opted into the request API.
	var scorer *queryScorer
	if cfg.engine != "" {
		if scorer, err = newQueryScorer(specs, vocab, cfg.engine, cfg.alpha, cfg.workers, cfg.seed); err != nil {
			return err
		}
	}

	tr, err := peernet.ListenTCP(cfg.id, spec.addr)
	if err != nil {
		return err
	}
	defer tr.Close()
	dir := make(map[graph.NodeID]string, len(specs))
	for pid, s := range specs {
		dir[pid] = s.addr
	}
	tr.SetDirectory(dir)

	pcfg := peernet.PeerConfig{
		ID:        cfg.id,
		Neighbors: spec.neighbors,
		Vocab:     vocab,
		Docs:      spec.docs,
		Alpha:     cfg.alpha,
	}
	if scorer != nil {
		pcfg.ScoreQuery = scorer.Score
	}
	peer, err := peernet.NewPeer(pcfg, tr)
	if err != nil {
		return err
	}
	peer.Start()
	defer peer.Stop()
	mode := "gossip-cache scoring"
	if scorer != nil {
		mode = fmt.Sprintf("request-API scoring (engine %v)", scorer.req.Engine)
	}
	fmt.Printf("peer %d listening on %s (%d neighbours, %d local docs, %s)\n",
		cfg.id, tr.Addr(), len(spec.neighbors), len(spec.docs), mode)

	issue := func(word retrieval.DocID) error {
		results, err := peer.Query(vocab.Vector(word), cfg.ttl, cfg.k, 30*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("query %s returned %d result(s):\n", vocab.Word(word), len(results))
		for i, r := range results {
			fmt.Printf("  %d. %s (score %.4f)\n", i+1, vocab.Word(r.Doc), r.Score)
		}
		return nil
	}

	switch {
	case cfg.batch != "":
		ws, err := parseWordList(cfg.batch, vocab.Len())
		if err != nil {
			return err
		}
		time.Sleep(cfg.wait)
		if scorer != nil {
			queries := make([][]float64, len(ws))
			for i, w := range ws {
				queries[i] = vocab.Vector(w)
			}
			st, err := scorer.Prewarm(queries)
			if err != nil {
				return err
			}
			fmt.Printf("batch of %d queries scored in one diffusion: %d sweeps, %d messages (%.0f per query)\n",
				len(ws), st.Sweeps, st.Messages, float64(st.Messages)/float64(len(ws)))
		}
		for _, w := range ws {
			if err := issue(w); err != nil {
				return err
			}
		}
		return nil
	case cfg.query != "":
		w, err := parseWord(cfg.query, vocab.Len())
		if err != nil {
			return err
		}
		time.Sleep(cfg.wait)
		return issue(w)
	}

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	updates, messages := peer.Stats()
	fmt.Printf("\npeer %d shutting down: %d diffusion updates, %d messages sent\n", cfg.id, updates, messages)
	return nil
}

// parseWordList parses a comma-separated -batch argument.
func parseWordList(s string, vocabLen int) ([]retrieval.DocID, error) {
	parts := strings.Split(s, ",")
	out := make([]retrieval.DocID, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		w, err := parseWord(p, vocabLen)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -batch list %q", s)
	}
	return out, nil
}

func parseWord(token string, vocabLen int) (retrieval.DocID, error) {
	w, err := strconv.Atoi(strings.TrimPrefix(token, "w"))
	if err != nil || w < 0 || w >= vocabLen {
		return 0, fmt.Errorf("bad word token %q (want w<0..%d>)", token, vocabLen-1)
	}
	return w, nil
}

func loadTopology(path string) (map[int]peerSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open topology: %w", err)
	}
	defer f.Close()
	specs := make(map[int]peerSpec)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: want `<id> <addr> <neighbours> [docs]`", path, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("%s:%d: bad id %q", path, line, fields[0])
		}
		spec := peerSpec{addr: fields[1]}
		if spec.neighbors, err = parseIntList(fields[2]); err != nil {
			return nil, fmt.Errorf("%s:%d: neighbours: %w", path, line, err)
		}
		if len(fields) > 3 {
			if spec.docs, err = parseIntList(fields[3]); err != nil {
				return nil, fmt.Errorf("%s:%d: docs: %w", path, line, err)
			}
		}
		if _, dup := specs[id]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate id %d", path, line, id)
		}
		specs[id] = spec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read topology: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%s: empty topology", path)
	}
	return specs, nil
}

func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
