// Command peerd runs one real P2P search peer over TCP — the deployable
// counterpart of the simulation. Peers are configured with a static
// topology file mapping node ids to addresses and neighbour lists; every
// peer regenerates the same corpus from the shared seed, stores the
// documents assigned to its id, gossips PPR embeddings, and answers
// queries.
//
// Topology file format (one peer per line):
//
//	<id> <host:port> <neighbour,neighbour,...> [doc,doc,...]
//
// Example (three peers on one machine):
//
//	0 127.0.0.1:7000 1 12,99
//	1 127.0.0.1:7001 0,2
//	2 127.0.0.1:7002 1 7
//
// Run each in its own terminal:
//
//	peerd -topology net.txt -id 0
//	peerd -topology net.txt -id 1
//	peerd -topology net.txt -id 2 -query w12 -wait 3s
//
// The -query flag issues a search for the embedding of the named word after
// -wait (allowing diffusion to settle) and prints the results; -batch
// issues several comma-separated words, scored through one batched
// diffusion.
//
// With -engine, the peer serves queries through the unified
// DiffusionRequest API instead of its own gossip-cache scoring: every peer
// can reconstruct the deployment's Network from the shared topology file
// and corpus seed, so forwarding decisions come from a
// core.Network.ScoreBatch on the selected engine (async|parallel|sync|gs),
// and -batch amortizes all of its queries into a single multi-column
// ScoreBatch call before the walks start. Without -engine the peer keeps
// gossip-cache scoring for everything, -batch included.
//
// Request-API scoring runs behind an admission-controlled serve.Scheduler:
// concurrently arriving queries coalesce into one multi-column diffusion
// under the -maxwait latency budget (batch width capped at -maxbatch, B
// grows with load), and an LRU cache of -cache score columns lets repeated
// queries skip diffusion entirely. The scheduler's batch-width histogram,
// wait quantiles, queue depth, and cache hit rate are printed at shutdown.
//
// Scheduling is class- and deadline-aware: -class tags this peer's
// submissions interactive (the default — urgent, jumps the coalesce
// window) or bulk (prewarm/analytics traffic that waits to widen batches),
// and -deadline attaches a dispatch deadline to every submission — a query
// the scheduler cannot dispatch in time is shed, never scored.
//
// With -shards N the mirror's diffusions run over N partitioned Transition
// shards diffusing concurrently (-part selects range or degree-balanced
// greedy partitioning; scores match the single CSR within 1e-9). With
// -tenants name=topo.txt,... the same process additionally serves other
// tenant graphs, each behind its own coalescing scheduler, all shards
// diffusing on one shared worker pool — per-tenant scheduler stats are
// printed at shutdown.
//
// With -scorer walkindex the local mirror scores through a precomputed
// walk index instead: the leading terms of each document host's PPR
// column are built in the background (Bulk-class tasks riding the same
// scheduler) and combined per query, with a small residual diffusion
// finishing whatever the store cannot answer — scores match the plain
// CSR backend within the request tolerance even while the index is
// partial or stale. -index-budget bounds the store's bytes; on SIGHUP
// only segments in the patch's closed neighbourhood are dropped and
// rebuilt.
//
// With -topk N the local mirror additionally serves certified top-k
// rankings through the bidirectional scoring path: reverse-push tables
// from the document-host candidate set bound each candidate's final score
// during the forward diffusion, so the ranking is certified (provably
// equal to the full-vector top-k) as soon as the k/(k+1) gap exceeds the
// remaining residual mass — usually sweeps before full convergence. The
// -query/-batch paths then print the certified host ranking next to the
// decentralized walk's results. Rankings stay exact across SIGHUP: the
// reverse tables invalidate through the same changed-closure contract as
// the walk index.
//
// A long-running peer follows topology changes without restarting: SIGHUP
// reloads the -topology file, patches the scorer's mirror Network (joined
// and departed peers), invalidates the serve cache — targeted when the
// patch is small (only cached score columns whose diffusion touched the
// patched neighbourhood are dropped), whole-cache otherwise — refreshes
// the transport directory, and rewires this peer's own neighbour set.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"diffusearch/internal/core"
	"diffusearch/internal/diffuse"
	"diffusearch/internal/embed"
	"diffusearch/internal/graph"
	"diffusearch/internal/peernet"
	"diffusearch/internal/retrieval"
	"diffusearch/internal/serve"
	"diffusearch/internal/shard"
	"diffusearch/internal/topk"
	"diffusearch/internal/walkindex"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "topology file (required)")
		id       = flag.Int("id", -1, "this peer's node id (required)")
		alpha    = flag.Float64("alpha", 0.5, "PPR teleport probability")
		seed     = flag.Uint64("seed", 42, "shared corpus seed (must match across peers)")
		words    = flag.Int("words", 2000, "shared vocabulary size (must match across peers)")
		dim      = flag.Int("dim", 64, "shared embedding dimension (must match across peers)")
		query    = flag.String("query", "", "issue a query for this word (e.g. w12) and exit")
		batch    = flag.String("batch", "", "issue a batch of comma-separated words (e.g. w12,w7) and exit; with -engine, the batch is scored in one diffusion first")
		engine   = flag.String("engine", "", "serve queries through the request API on this engine (async|parallel|sync|gs); empty keeps gossip-cache scoring")
		workers  = flag.Int("workers", 0, "parallel engine pool size (0 = GOMAXPROCS)")
		colTile  = flag.Int("coltile", 0, "column tile width for wide batch diffusions: 0 auto-tiles from the cache model, <0 disables tiling, >0 forces the width (bit-identical scores either way; needs -engine)")
		shards   = flag.Int("shards", 0, "partition the scorer mirror into this many Transition shards diffusing concurrently (0 = single CSR; needs -engine)")
		part     = flag.String("part", "range", "shard partitioner: range (contiguous ids) or greedy (degree-balanced)")
		scorer   = flag.String("scorer", "", "scoring backend for the local mirror: csr, sharded, or walkindex (precomputed per-document PPR segments; needs -engine)")
		indexBgt = flag.Int64("index-budget", 0, "walk-index store budget in bytes (0 = 64MiB default, negative = unbounded; needs -scorer walkindex)")
		tenants  = flag.String("tenants", "", "extra tenant graphs served by this process: comma-separated name=topology.txt pairs, each scored through its own scheduler over the shared worker pool (needs -engine)")
		maxWait  = flag.Duration("maxwait", 2*time.Millisecond, "scheduler coalescing budget: how long a query may wait for batch co-riders (0 = zero-wait)")
		maxBatch = flag.Int("maxbatch", 64, "scheduler batch-width cap for coalesced diffusions")
		cache    = flag.Int("cache", 512, "scheduler LRU score-cache entries (0 disables)")
		topkN    = flag.Int("topk", 0, "serve certified top-k rankings through the bidirectional scoring path and print them for -query/-batch (0 disables; needs -engine)")
		class    = flag.String("class", "interactive", "scheduling class for this peer's request-API submissions: interactive (jump the coalesce window) or bulk (wait up to 4×maxwait to widen batches)")
		deadline = flag.Duration("deadline", 0, "per-query dispatch deadline for request-API submissions; queries not dispatched in time are shed, never scored (0 = none)")
		admin    = flag.String("admin", "", "serve the admin endpoint (/metrics, /statusz, /healthz, /debug/pprof) on this address, e.g. :9090 (empty disables)")
		statsEv  = flag.Duration("statsevery", 0, "print the status snapshot at this interval (0 disables)")
		ttl      = flag.Int("ttl", 20, "query hop budget")
		k        = flag.Int("k", 3, "tracked results")
		fBits    = flag.Int("filterbits", 1024, "bloom document-summary size in bits gossiped to neighbours for routed query fan-out (0 disables filter routing)")
		fHashes  = flag.Int("filterhashes", 4, "bloom probe count per document key")
		qKeys    = flag.Int("querykeys", 8, "doc-term keys mined per forwarded query for filter routing")
		wait     = flag.Duration("wait", 2*time.Second, "diffusion settling time before -query/-batch")
	)
	flag.Parse()
	cfg := runConfig{
		topoPath: *topoPath, id: *id, alpha: *alpha, seed: *seed,
		words: *words, dim: *dim, query: *query, batch: *batch,
		engine: *engine, workers: *workers, colTile: *colTile, ttl: *ttl, k: *k, wait: *wait,
		maxWait: *maxWait, maxBatch: *maxBatch, cache: *cache,
		shards: *shards, part: *part, tenants: *tenants,
		scorer: *scorer, indexBudget: *indexBgt,
		class: *class, deadline: *deadline, topk: *topkN,
		admin: *admin, statsEvery: *statsEv,
		filterBits: *fBits, filterHashes: *fHashes, queryKeys: *qKeys,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "peerd:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	topoPath    string
	id          int
	alpha       float64
	seed        uint64
	words       int
	dim         int
	query       string
	batch       string
	engine      string
	workers     int
	colTile     int
	ttl         int
	k           int
	wait        time.Duration
	maxWait     time.Duration
	maxBatch    int
	cache       int
	shards      int
	part        string
	tenants     string
	scorer      string
	indexBudget int64
	class       string
	deadline    time.Duration
	topk        int
	admin       string
	statsEvery  time.Duration

	filterBits   int
	filterHashes int
	queryKeys    int
}

type peerSpec struct {
	addr      string
	neighbors []graph.NodeID
	docs      []retrieval.DocID
}

// queryScorer serves per-node relevance scores through the admission-
// controlled serve layer over a mirror of the deployment: peerd peers
// share the topology file and the seeded corpus, so any peer can
// reconstruct the same Network the simulation uses and score queries with
// ScoreBatch instead of its own diffusion call. Concurrent queries
// coalesce into one multi-column diffusion (the Scheduler replaces the
// per-query Score path and the FIFO memo peerd carried before PR 3), and
// Prewarm fills the scheduler's LRU cache for a whole batch with one
// diffusion.
//
// With -shards the mirror's diffusions run over partitioned Transition
// shards, and with -tenants the same process hosts additional tenant
// graphs: every tenant gets its own coalescing scheduler (registered in
// one serve.Multi) while all tenants' shards diffuse on one shared
// diffuse.Pool — the sharded multi-graph serving arrangement.
//
// The local mirror Network is swappable: Patch rebuilds it from reloaded
// topology specs (peers joining or leaving) and invalidates the score
// cache — targeted when the patch is small (only cached columns whose
// scores touch the patched neighbourhood are dropped), whole-cache
// otherwise.
type queryScorer struct {
	req   core.DiffusionRequest
	vocab *embed.Vocabulary
	multi *serve.Multi
	local *serve.Scheduler // the localTenant scheduler (hot path)
	pool  *diffuse.Pool    // shared across tenants; nil when unsharded
	cfg   scorerConfig

	// wix and refresher exist only with -scorer walkindex: the local
	// mirror's diffusions are then answered from precomputed per-document
	// PPR segments (plus an exact residual finish), and the refresher
	// rebuilds missing segments as Bulk tasks on the local scheduler.
	wix       *walkindex.Backend
	refresher *walkindex.Refresher

	// tk exists only with -topk: the local mirror's ranker, answering
	// SubmitRanked queries with certified top-k host rankings through the
	// bidirectional (reverse-push + early-stopped forward) path.
	tk *topk.Backend

	mu    sync.RWMutex
	net   *core.Network    // local topology mirror; swapped whole on Patch
	specs map[int]peerSpec // specs the mirror was built from (patch diffs)
}

// localTenant names this peer's own overlay in the tenant registry.
const localTenant = "local"

// scorerConfig carries the scheduler and request knobs into newQueryScorer.
type scorerConfig struct {
	engine      string
	alpha       float64
	workers     int
	colTile     int
	seed        uint64
	maxWait     time.Duration
	maxBatch    int
	cache       int
	shards      int
	partitioner graph.Partitioner
	// scorer picks the local mirror's backend; indexBudget bounds the
	// walk-index segment store (see walkindex.Config.Budget).
	scorer      core.ScorerKind
	indexBudget int64
	// class and deadline are this connection's submission defaults: every
	// Score call is tagged with the class, and given a dispatch deadline of
	// now+deadline when non-zero (see serve.SubmitOpts).
	class    serve.Class
	deadline time.Duration
	// topk > 0 attaches the bidirectional ranker to the local mirror and
	// prints certified top-k host rankings for issued queries.
	topk int
	// tel, when non-nil, instruments the scorer: its diffusion observer
	// rides every dispatched batch and each tenant's scheduler gets a
	// trace sink. Nil (the default, and every test's) keeps the hot path
	// identical to an unobserved build.
	tel *adminTelemetry
}

// newQueryScorer mirrors the topology and document placement into a
// Network, resolves the engine flag into the DiffusionRequest every
// dispatched batch uses, and starts one coalescing scheduler per tenant
// (the local overlay plus any -tenants extras) over a shared worker pool.
func newQueryScorer(specs map[int]peerSpec, vocab *embed.Vocabulary, cfg scorerConfig,
	tenantSpecs map[string]map[int]peerSpec) (*queryScorer, error) {
	eng, err := diffuse.ParseEngine(cfg.engine)
	if err != nil {
		return nil, err
	}
	s := &queryScorer{
		req: core.DiffusionRequest{
			Engine: eng, Alpha: cfg.alpha, Workers: cfg.workers, ColTile: cfg.colTile,
			Seed: cfg.seed, Observer: cfg.tel.observer(),
		},
		vocab: vocab,
		multi: serve.NewMulti(),
		cfg:   cfg,
		specs: specs,
	}
	// The shared pool exists whenever anything can diffuse concurrently:
	// sharded mirrors, or several tenants behind one process. -tenants
	// without -shards still bounds the workers by attaching single-shard
	// backends over the pool (bit-identical scores, shared goroutine set).
	if cfg.shards > 0 || len(tenantSpecs) > 0 {
		s.pool = diffuse.NewPool(cfg.workers)
	}
	// The pool workers and any already-registered schedulers are live
	// goroutines; release them when a later tenant fails to build.
	fail := func(err error) (*queryScorer, error) {
		s.Close()
		return nil, err
	}
	if s.net, err = s.buildLocalMirror(specs); err != nil {
		return fail(err)
	}
	schedCfg := serve.Config{
		Request: s.req, MaxWait: cfg.maxWait, MaxBatch: cfg.maxBatch, Cache: cfg.cache,
	}
	// buildLocalMirror already ran, so the local sink knows whether the
	// tenant scores through the walk index (warm/cold finish attribution).
	schedCfg.OnTrace = cfg.tel.sink(localTenant, s.wix != nil)
	if s.local, err = s.multi.Register(localTenant, s, schedCfg); err != nil {
		return fail(err)
	}
	for name, tspecs := range tenantSpecs {
		tnet, err := s.buildTenantMirror(tspecs)
		if err != nil {
			return fail(fmt.Errorf("tenant %s: %w", name, err))
		}
		tenantCfg := schedCfg
		tenantCfg.OnTrace = cfg.tel.sink(name, false)
		if _, err := s.multi.Register(name, tnet, tenantCfg); err != nil {
			return fail(err)
		}
	}
	// The walk index starts empty; the refresher fills it (and re-fills it
	// after SIGHUP patches) as Bulk tasks riding the local scheduler, so
	// index builds coalesce with live traffic instead of competing with it.
	// Queries served before coverage completes are still exact — the
	// backend finishes whatever the store cannot answer with a residual
	// diffusion.
	if s.wix != nil {
		s.refresher = walkindex.NewRefresher(s.wix, s.local, walkindex.RefreshConfig{})
		s.refresher.Start()
	}
	return s, nil
}

// buildLocalMirror builds the local tenant's mirror. Unlike plain tenant
// mirrors it honours -scorer (walkindex attaches the segment-store
// backend — whole-graph, so it excludes -shards — instead of the sharded
// one) and -topk (the bidirectional ranker rides any scorer: rankings
// always diffuse the full CSR forward, whatever backend answers
// full-vector queries).
func (s *queryScorer) buildLocalMirror(specs map[int]peerSpec) (*core.Network, error) {
	var net *core.Network
	var err error
	if s.cfg.scorer != core.ScorerWalkIndex {
		net, err = s.buildTenantMirror(specs)
	} else if net, err = buildMirror(specs, s.vocab); err == nil {
		var in *walkindex.IndexedNetwork
		in, err = walkindex.Attach(net, walkindex.Config{
			Alpha: s.cfg.alpha, Budget: s.cfg.indexBudget,
			Engine: s.req.Engine, Workers: s.cfg.workers, Seed: s.cfg.seed,
		})
		if err == nil {
			s.wix = in.Backend()
		}
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.topk > 0 {
		if s.tk, err = topk.Attach(net, topk.Config{
			Alpha: s.cfg.alpha, Engine: s.req.Engine,
			Workers: s.cfg.workers, Seed: s.cfg.seed,
		}); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// buildTenantMirror builds one tenant's mirror Network and, whenever a
// shared pool exists, attaches the sharded scoring backend over it (shard
// count 1 when only multi-tenancy, not partitioning, was requested).
func (s *queryScorer) buildTenantMirror(specs map[int]peerSpec) (*core.Network, error) {
	net, err := buildMirror(specs, s.vocab)
	if err != nil {
		return nil, err
	}
	if s.pool != nil {
		shards := s.cfg.shards
		if shards <= 0 {
			shards = 1
		}
		shard.Attach(net, shard.Config{
			Shards: shards, Partitioner: s.cfg.partitioner, Pool: s.pool,
		})
	}
	return net, nil
}

// buildMirror reconstructs the deployment Network from topology specs: the
// overlay graph, the shared-seed document placement, and the summarized
// personalization vectors.
func buildMirror(specs map[int]peerSpec, vocab *embed.Vocabulary) (*core.Network, error) {
	n := 0
	for id := range specs {
		if id >= n {
			n = id + 1
		}
	}
	b := graph.NewBuilder(n)
	var docs []retrieval.DocID
	var hosts []graph.NodeID
	for id, spec := range specs {
		for _, v := range spec.neighbors {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("peer %d lists unknown neighbour %d", id, v)
			}
			b.AddEdge(id, v)
		}
		for _, d := range spec.docs {
			docs = append(docs, d)
			hosts = append(hosts, id)
		}
	}
	net := core.NewNetwork(b.Build(), vocab)
	if err := net.PlaceDocuments(docs, hosts); err != nil {
		return nil, err
	}
	if err := net.ComputePersonalization(); err != nil {
		return nil, err
	}
	return net, nil
}

// ScoreBatch implements serve.Backend over the current mirror, so batches
// dispatched after a Patch score against the fresh topology.
func (s *queryScorer) ScoreBatch(queries [][]float64, req core.DiffusionRequest) ([][]float64, diffuse.Stats, error) {
	s.mu.RLock()
	net := s.net
	s.mu.RUnlock()
	return net.ScoreBatch(queries, req)
}

// ScoreBatchTopK implements serve.RankedBackend over the current mirror:
// with -topk the attached bidirectional ranker answers (certified early
// stop), without it the mirror's exact full-vector fallback does — either
// way SubmitRanked resolves to the exact top-k.
func (s *queryScorer) ScoreBatchTopK(queries [][]float64, req core.DiffusionRequest) ([]core.RankedResult, diffuse.Stats, error) {
	s.mu.RLock()
	net := s.net
	s.mu.RUnlock()
	return net.ScoreBatchTopK(queries, req)
}

// scoreTimeout bounds how long a forwarded query may wait in the
// scheduler; queries are additionally timeout-guarded at their origin.
const scoreTimeout = 30 * time.Second

// Score returns the per-node relevance scores for one query embedding
// through the local tenant's coalescing scheduler (cache hit, coalesced
// batch column, or fresh diffusion), tagged with this peer's configured
// scheduling class and deadline.
func (s *queryScorer) Score(query []float64) ([]float64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), scoreTimeout)
	defer cancel()
	opts := serve.SubmitOpts{Class: s.cfg.class}
	if s.cfg.deadline != 0 {
		// 0 means no deadline; anything else (including a negative budget,
		// which sheds on arrival) becomes an absolute dispatch deadline.
		opts.Deadline = time.Now().Add(s.cfg.deadline)
	}
	return s.local.SubmitWith(ctx, query, opts)
}

// RankQuery returns the certified top-k document-host ranking for one
// query embedding through the scheduler's ranked path (same-k coalescing,
// same class/deadline tagging as Score). Needs -topk.
func (s *queryScorer) RankQuery(query []float64, k int) (core.RankedResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), scoreTimeout)
	defer cancel()
	opts := serve.SubmitOpts{Class: s.cfg.class}
	if s.cfg.deadline != 0 {
		opts.Deadline = time.Now().Add(s.cfg.deadline)
	}
	return s.local.SubmitRanked(ctx, query, k, opts)
}

// Prewarm scores a whole query batch in one multi-column diffusion and
// fills the scheduler's cache, so the subsequent live walks pay no further
// diffusion cost.
func (s *queryScorer) Prewarm(queries [][]float64) (diffuse.Stats, error) {
	return s.local.Warm(queries)
}

// smallPatchFrac bounds the targeted-invalidation path: a patch whose
// closed neighbourhood covers more than this fraction of the overlay
// invalidates the whole cache (scanning the cache per column buys nothing
// once most columns plausibly touch the patch).
const smallPatchFrac = 0.25

// Patch swaps the local topology mirror for one rebuilt from reloaded
// specs and invalidates the serve cache. Small pure-rewire patches
// invalidate targeted: only cached columns whose scores touch the patch's
// closed neighbourhood (changed peers plus their old and new neighbours)
// are dropped, so a one-peer rewire keeps the rest of the cache serving.
// Patches that change relevance sources — document placements, or peers
// joining/leaving with content — always drop the whole cache: targeted
// invalidation inspects where cached mass already is and cannot see mass
// a new document creates (see serve.Scheduler.InvalidateNodes). The
// returned summary is for the reload log line.
//
// With -scorer walkindex the segment store survives the patch: segments
// whose seeds sit in the patch's closed neighbourhood are dropped (their
// PPR columns changed) and the rest keep serving the new mirror — stale
// or missing segments cost finish sweeps, never accuracy — while the
// background refresher rebuilds the dropped ones.
func (s *queryScorer) Patch(specs map[int]peerSpec) (string, error) {
	s.mu.RLock()
	old := s.specs
	s.mu.RUnlock()
	changed, docsChanged := changedClosure(old, specs)

	var net *core.Network
	var err error
	if s.wix != nil {
		// Bare mirror: the existing walk-index backend is re-pointed at the
		// new Transition (dropping patched segments) and re-attached, so
		// surviving segments keep answering.
		if net, err = buildMirror(specs, s.vocab); err != nil {
			return "", err
		}
		s.wix.PatchTopology(net.Transition(), changed)
		s.wix.SetSeeds(walkindex.DocSeeds(net))
		net.SetScorer(s.wix)
	} else if net, err = s.buildTenantMirror(specs); err != nil {
		return "", err
	}
	if s.tk != nil {
		// Same staleness contract as the walk index: reverse tables whose
		// candidates sit in the patch's closed neighbourhood drop, the rest
		// survive with poisoned error bounds until lazily re-measured, and
		// the candidate set follows the new document placement — rankings
		// on the new topology stay exact either way.
		s.tk.PatchTopology(net.Transition(), changed)
		s.tk.SetCandidates(net.DocHosts())
		net.SetRanker(s.tk)
	}
	s.mu.Lock()
	s.net = net
	s.specs = specs
	s.mu.Unlock()
	total := len(specs)
	if len(changed) == 0 {
		return "cache untouched (no peer changed)", nil
	}
	if docsChanged {
		s.local.InvalidateCache()
		return "whole cache invalidated (document placement changed)", nil
	}
	if float64(len(changed)) <= smallPatchFrac*float64(total) {
		dropped := s.local.InvalidateNodes(changed)
		return fmt.Sprintf("targeted invalidation: %d nodes in patch neighbourhood, %d cached columns dropped",
			len(changed), dropped), nil
	}
	s.local.InvalidateCache()
	return fmt.Sprintf("whole cache invalidated (%d/%d nodes in patch neighbourhood)", len(changed), total), nil
}

// changedClosure diffs two topology snapshots and returns the patch's
// closed neighbourhood — every peer whose membership, neighbour set, or
// document placement changed, plus that peer's neighbours in both the old
// and the new topology (a rewiring redistributes diffusion mass across
// exactly those nodes) — along with whether any relevance source moved
// (document placements differ, or a peer joined/left holding documents),
// which rules targeted invalidation out.
func changedClosure(old, new map[int]peerSpec) (ids []int, docsChanged bool) {
	changed := make(map[int]bool)
	diff := func(id int) {
		o, inOld := old[id]
		n, inNew := new[id]
		docsEq := equalInts(o.docs, n.docs) // a missing side reads as no docs
		if !docsEq {
			docsChanged = true
		}
		if !inOld || !inNew || !docsEq || !equalInts(o.neighbors, n.neighbors) {
			changed[id] = true
		}
	}
	for id := range old {
		diff(id)
	}
	for id := range new {
		if _, seen := old[id]; !seen {
			diff(id)
		}
	}
	closure := make(map[int]bool, len(changed))
	for id := range changed {
		closure[id] = true
		for _, v := range old[id].neighbors {
			closure[v] = true
		}
		for _, v := range new[id].neighbors {
			closure[v] = true
		}
	}
	ids = make([]int, 0, len(closure))
	for id := range closure {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, docsChanged
}

// equalInts reports set equality of two id lists (topology files may
// reorder them without meaning a change).
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	slices.Sort(as)
	slices.Sort(bs)
	return slices.Equal(as, bs)
}

// Stats snapshots every tenant's scheduler counters.
func (s *queryScorer) Stats() map[string]serve.Stats { return s.multi.Stats() }

// Tenants lists the served tenant names.
func (s *queryScorer) Tenants() []string { return s.multi.Tenants() }

// Close drains and stops every tenant scheduler and the shared pool. The
// refresher stops first so no new index-build tasks chase the closing
// schedulers.
func (s *queryScorer) Close() {
	if s.refresher != nil {
		s.refresher.Stop()
	}
	s.multi.Close()
	if s.pool != nil {
		s.pool.Close()
	}
}

func run(cfg runConfig) error {
	if cfg.topoPath == "" || cfg.id < 0 {
		return fmt.Errorf("-topology and -id are required (see -h)")
	}
	specs, err := loadTopology(cfg.topoPath)
	if err != nil {
		return err
	}
	spec, ok := specs[cfg.id]
	if !ok {
		return fmt.Errorf("id %d not present in %s", cfg.id, cfg.topoPath)
	}

	vocab, err := embed.Synthetic(embed.SyntheticParams{
		Words: cfg.words, Dim: cfg.dim, Clusters: max(cfg.words/12, 1), Spread: 0.55,
		CommonComponent: 0.6, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}

	// Telemetry exists only when a reporting surface asked for it; a nil
	// adminTelemetry threads nil hooks everywhere, so the unobserved peer
	// runs exactly the pre-instrumentation hot path.
	var tel *adminTelemetry
	if cfg.admin != "" || cfg.statsEvery > 0 {
		tel = newAdminTelemetry()
	}
	start := time.Now()

	// -engine alone decides the serving mode: -batch without it issues the
	// queries over plain gossip scoring, same as the rest of a deployment
	// that never opted into the request API.
	var scorer *queryScorer
	if cfg.engine != "" {
		pt, err := graph.ParsePartitioner(cfg.part)
		if err != nil {
			return err
		}
		cl, err := serve.ParseClass(cfg.class)
		if err != nil {
			return err
		}
		sk, err := core.ParseScorer(cfg.scorer)
		if err != nil {
			return err
		}
		shards := cfg.shards
		switch sk {
		case core.ScorerWalkIndex:
			if shards > 0 {
				return fmt.Errorf("-scorer walkindex excludes -shards (segments span the whole graph)")
			}
		case core.ScorerSharded:
			if shards <= 0 {
				shards = 1
			}
		default:
			if shards > 0 {
				sk = core.ScorerSharded // -shards alone keeps meaning sharded
			}
		}
		if cfg.indexBudget != 0 && sk != core.ScorerWalkIndex {
			return fmt.Errorf("-index-budget needs -scorer walkindex")
		}
		tenantSpecs, err := loadTenants(cfg.tenants)
		if err != nil {
			return err
		}
		if scorer, err = newQueryScorer(specs, vocab, scorerConfig{
			engine: cfg.engine, alpha: cfg.alpha, workers: cfg.workers, colTile: cfg.colTile, seed: cfg.seed,
			maxWait: cfg.maxWait, maxBatch: cfg.maxBatch, cache: cfg.cache,
			shards: shards, partitioner: pt,
			scorer: sk, indexBudget: cfg.indexBudget,
			class: cl, deadline: cfg.deadline, topk: cfg.topk,
			tel: tel,
		}, tenantSpecs); err != nil {
			return err
		}
		defer scorer.Close()
		tel.registerScorer(scorer)
	} else if cfg.shards > 0 || cfg.tenants != "" || cfg.scorer != "" || cfg.topk > 0 {
		return fmt.Errorf("-shards, -tenants, -scorer, and -topk need -engine (request-API scoring)")
	}

	tr, err := peernet.ListenTCP(cfg.id, spec.addr)
	if err != nil {
		return err
	}
	defer tr.Close()
	dir := make(map[graph.NodeID]string, len(specs))
	for pid, s := range specs {
		dir[pid] = s.addr
	}
	tr.SetDirectory(dir)

	pcfg := peernet.PeerConfig{
		ID:        cfg.id,
		Neighbors: spec.neighbors,
		Vocab:     vocab,
		Docs:      spec.docs,
		Alpha:     cfg.alpha,
		Filter: peernet.FilterConfig{
			Bits:      cfg.filterBits,
			Hashes:    cfg.filterHashes,
			QueryKeys: cfg.queryKeys,
		},
	}
	if scorer != nil {
		pcfg.ScoreQuery = scorer.Score
	}
	peer, err := peernet.NewPeer(pcfg, tr)
	if err != nil {
		return err
	}
	peer.Start()
	defer peer.Stop()
	tel.registerPeer(peer)
	src := statusSource{id: cfg.id, start: start, peer: peer, scorer: scorer}
	if cfg.admin != "" {
		srv, addr, err := startAdmin(cfg.admin, newAdminMux(tel.reg, src.snapshot))
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("admin endpoint on http://%s (/metrics /statusz /healthz /debug/pprof)\n", addr)
	}
	if cfg.statsEvery > 0 {
		defer startStatsLoop(cfg.statsEvery, src.snapshot)()
	}
	mode := "gossip-cache scoring"
	if scorer != nil {
		mode = fmt.Sprintf("request-API scoring (engine %v)", scorer.req.Engine)
		if cfg.shards > 0 {
			mode += fmt.Sprintf(", %d shards/%s", cfg.shards, cfg.part)
		}
		if scorer.wix != nil {
			mode += fmt.Sprintf(", walk index over %d seeds", scorer.wix.SeedCount())
		}
		if scorer.tk != nil {
			mode += fmt.Sprintf(", certified top-%d ranking over %d candidates",
				cfg.topk, len(scorer.tk.Candidates()))
		}
		if names := scorer.Tenants(); len(names) > 1 {
			mode += fmt.Sprintf(", tenants %s", strings.Join(names, ","))
		}
	}
	fmt.Printf("peer %d listening on %s (%d neighbours, %d local docs, %s)\n",
		cfg.id, tr.Addr(), len(spec.neighbors), len(spec.docs), mode)

	issue := func(word retrieval.DocID) error {
		if scorer != nil && cfg.topk > 0 {
			// The certified ranking answers "which hosts would a perfect
			// relevance walk end at" before any message leaves this peer.
			r, err := scorer.RankQuery(vocab.Vector(word), cfg.topk)
			if err != nil {
				return err
			}
			status := "certified early-stop"
			if !r.Certified {
				status = "fully converged, no certificate"
			}
			fmt.Printf("query %s top-%d hosts (%s):", vocab.Word(word), len(r.IDs), status)
			for i, id := range r.IDs {
				fmt.Printf(" %d(%.4f)", id, r.Scores[i])
			}
			fmt.Println()
		}
		results, err := peer.Query(vocab.Vector(word), cfg.ttl, cfg.k, 30*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("query %s returned %d result(s):\n", vocab.Word(word), len(results))
		for i, r := range results {
			fmt.Printf("  %d. %s (score %.4f)\n", i+1, vocab.Word(r.Doc), r.Score)
		}
		return nil
	}

	switch {
	case cfg.batch != "":
		ws, err := parseWordList(cfg.batch, vocab.Len())
		if err != nil {
			return err
		}
		time.Sleep(cfg.wait)
		if scorer != nil {
			queries := make([][]float64, len(ws))
			for i, w := range ws {
				queries[i] = vocab.Vector(w)
			}
			st, err := scorer.Prewarm(queries)
			if err != nil {
				return err
			}
			fmt.Printf("batch of %d queries scored in one diffusion: %d sweeps, %d messages (%.0f per query)\n",
				len(ws), st.Sweeps, st.Messages, float64(st.Messages)/float64(len(ws)))
		}
		for _, w := range ws {
			if err := issue(w); err != nil {
				return err
			}
		}
		return nil
	case cfg.query != "":
		w, err := parseWord(cfg.query, vocab.Len())
		if err != nil {
			return err
		}
		time.Sleep(cfg.wait)
		return issue(w)
	}

	// Serve until interrupted; SIGHUP reloads the topology file so a
	// long-running peer follows joins/leaves without restarting.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for got := range sig {
		if got != syscall.SIGHUP {
			break
		}
		if err := reloadTopology(cfg, peer, tr, scorer); err != nil {
			fmt.Printf("topology reload failed (keeping previous topology): %v\n", err)
		}
	}
	// The shutdown report is the status snapshot's text rendering — the
	// same struct /statusz serves, so the banner and the JSON can't drift.
	fmt.Printf("\npeer %d shutting down\n%s", cfg.id, src.snapshot().text())
	return nil
}

// loadTenants parses the -tenants flag ("name=topology.txt,...") and loads
// each tenant's topology file.
func loadTenants(arg string) (map[string]map[int]peerSpec, error) {
	if arg == "" {
		return nil, nil
	}
	out := make(map[string]map[int]peerSpec)
	for _, pair := range strings.Split(arg, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, path, ok := strings.Cut(pair, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("bad -tenants entry %q (want name=topology.txt)", pair)
		}
		if name == localTenant {
			return nil, fmt.Errorf("-tenants name %q is reserved for this peer's overlay", localTenant)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate -tenants name %q", name)
		}
		specs, err := loadTopology(path)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
		out[name] = specs
	}
	return out, nil
}

// reloadTopology re-reads the topology file and applies the delta to the
// running peer: the transport directory learns new addresses, the peer's
// own neighbour set is rewired, and the request-API scorer (when enabled)
// rebuilds its mirror Network and drops its now-stale score cache.
func reloadTopology(cfg runConfig, peer *peernet.Peer, tr *peernet.TCPTransport, scorer *queryScorer) error {
	specs, err := loadTopology(cfg.topoPath)
	if err != nil {
		return err
	}
	spec, ok := specs[cfg.id]
	if !ok {
		return fmt.Errorf("id %d no longer present in %s", cfg.id, cfg.topoPath)
	}
	// Patch the scorer first: it is the step that validates the specs
	// (unknown neighbours, bad placement), so a broken file fails here
	// before the transport directory or our neighbour set have moved — the
	// caller's "keeping previous topology" message stays true.
	cacheNote := ""
	if scorer != nil {
		note, err := scorer.Patch(specs)
		if err != nil {
			return err
		}
		cacheNote = ", scorer mirror patched + " + note
	}
	dir := make(map[graph.NodeID]string, len(specs))
	for pid, s := range specs {
		dir[pid] = s.addr
	}
	tr.SetDirectory(dir)
	peer.UpdateNeighbors(spec.neighbors)
	// A patched placement must also patch the routing filter: the local
	// bloom summary is built from the holdings, so a doc delta rebuilds it
	// and the next gossip round re-proves it to the (now possibly rewired)
	// neighbour set. UpdateNeighbors already dropped departed peers'
	// cached filters and marked the survivors' stale.
	if !sameDocSet(peer.Docs(), spec.docs) {
		peer.SetDocuments(spec.docs)
		cacheNote += ", placement patched"
	}
	fmt.Printf("topology reloaded: %d peers, %d neighbours of peer %d%s\n",
		len(specs), len(spec.neighbors), cfg.id, cacheNote)
	return nil
}

// sameDocSet reports whether two holdings lists contain the same
// documents, order-insensitively (topology files list docs in any order).
func sameDocSet(a, b []retrieval.DocID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[retrieval.DocID]int, len(a))
	for _, d := range a {
		set[d]++
	}
	for _, d := range b {
		if set[d] == 0 {
			return false
		}
		set[d]--
	}
	return true
}

// parseWordList parses a comma-separated -batch argument.
func parseWordList(s string, vocabLen int) ([]retrieval.DocID, error) {
	parts := strings.Split(s, ",")
	out := make([]retrieval.DocID, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		w, err := parseWord(p, vocabLen)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -batch list %q", s)
	}
	return out, nil
}

func parseWord(token string, vocabLen int) (retrieval.DocID, error) {
	w, err := strconv.Atoi(strings.TrimPrefix(token, "w"))
	if err != nil || w < 0 || w >= vocabLen {
		return 0, fmt.Errorf("bad word token %q (want w<0..%d>)", token, vocabLen-1)
	}
	return w, nil
}

func loadTopology(path string) (map[int]peerSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open topology: %w", err)
	}
	defer f.Close()
	specs := make(map[int]peerSpec)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: want `<id> <addr> <neighbours> [docs]`", path, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("%s:%d: bad id %q", path, line, fields[0])
		}
		spec := peerSpec{addr: fields[1]}
		if spec.neighbors, err = parseIntList(fields[2]); err != nil {
			return nil, fmt.Errorf("%s:%d: neighbours: %w", path, line, err)
		}
		if len(fields) > 3 {
			if spec.docs, err = parseIntList(fields[3]); err != nil {
				return nil, fmt.Errorf("%s:%d: docs: %w", path, line, err)
			}
		}
		if _, dup := specs[id]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate id %d", path, line, id)
		}
		specs[id] = spec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read topology: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%s: empty topology", path)
	}
	return specs, nil
}

func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
