package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diffusearch/internal/peernet"
)

// adminFixture builds an instrumented scorer plus an idle (never started)
// loopback peer — enough live state for every admin surface to render.
func adminFixture(t *testing.T) (*adminTelemetry, statusSource) {
	t.Helper()
	vocab := testVocab(t)
	tel := newAdminTelemetry()
	scorer, err := newQueryScorer(testSpecs(), vocab, scorerConfig{
		engine: "sync", alpha: 0.5, seed: 42, maxBatch: 8, cache: 32, tel: tel,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scorer.Close)
	tel.registerScorer(scorer)

	tr, err := peernet.ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	peer, err := peernet.NewPeer(peernet.PeerConfig{
		ID: 0, Vocab: vocab, Alpha: 0.5,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	tel.registerPeer(peer)

	// One scored query and one cache hit populate the trace counters and
	// the diffusion observer before anything scrapes.
	q := vocab.Vector(3)
	for i := 0; i < 2; i++ {
		if _, err := scorer.Score(q); err != nil {
			t.Fatal(err)
		}
	}
	return tel, statusSource{id: 0, start: time.Now(), peer: peer, scorer: scorer}
}

func adminGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminEndpoint drives every admin surface over real HTTP and checks
// the instrumented query shows up in each one.
func TestAdminEndpoint(t *testing.T) {
	tel, src := adminFixture(t)
	ts := httptest.NewServer(newAdminMux(tel.reg, src.snapshot))
	defer ts.Close()

	code, body := adminGet(t, ts.URL, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}

	code, body = adminGet(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"diffusearch_diffusion_sweeps_total ",
		`diffusearch_serve_queries_total{path="scored",tenant="local"} 1`,
		`diffusearch_serve_queries_total{path="cache_hit",tenant="local"} 1`,
		`diffusearch_serve_score_seconds{tenant="local",quantile="0.99"}`,
		"diffusearch_peer_messages_sent_total 0",
		"diffusearch_serve_batches_total{tenant=\"local\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	code, body = adminGet(t, ts.URL, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz status %d", code)
	}
	var sn statusSnapshot
	if err := json.Unmarshal([]byte(body), &sn); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, body)
	}
	local, ok := sn.Schedulers["local"]
	if !ok {
		t.Fatalf("statusz missing local scheduler: %s", body)
	}
	if local.Completed != 1 || local.CacheHits != 1 || local.Batches != 1 {
		t.Fatalf("local scheduler stats wrong: %+v", local)
	}
	if sn.Peer != 0 || sn.UptimeSecs < 0 {
		t.Fatalf("snapshot header wrong: %+v", sn)
	}

	code, _ = adminGet(t, ts.URL, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", code)
	}
}

// TestStatusSnapshotTextMatchesJSON pins the anti-drift contract: the
// shutdown banner and -statsevery line are rendered from the same struct
// /statusz serves, so every figure in the text appears in the snapshot.
func TestStatusSnapshotTextMatchesJSON(t *testing.T) {
	_, src := adminFixture(t)
	sn := src.snapshot()
	text := sn.text()
	if !strings.Contains(text, "peer 0 up ") {
		t.Fatalf("text header wrong: %q", text)
	}
	if !strings.Contains(text, "scheduler[local]: "+sn.Schedulers["local"].String()) {
		t.Fatalf("text scheduler line does not match snapshot stats:\n%s", text)
	}
	if strings.Contains(text, "walkindex:") || strings.Contains(text, "topk:") {
		t.Fatalf("stores reported without backends:\n%s", text)
	}
}
