package main

import (
	"os"
	"path/filepath"
	"testing"

	"diffusearch/internal/diffuse"
	"diffusearch/internal/embed"
	"diffusearch/internal/graph"
	"diffusearch/internal/retrieval"
)

func writeTopo(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.txt")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTopology(t *testing.T) {
	path := writeTopo(t, `# comment
0 127.0.0.1:7000 1 12,99
1 127.0.0.1:7001 0,2
2 127.0.0.1:7002 1 7
`)
	specs, err := loadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs %d", len(specs))
	}
	if specs[0].addr != "127.0.0.1:7000" {
		t.Fatalf("addr %q", specs[0].addr)
	}
	if len(specs[0].neighbors) != 1 || specs[0].neighbors[0] != 1 {
		t.Fatalf("neighbors %v", specs[0].neighbors)
	}
	if len(specs[0].docs) != 2 || specs[0].docs[1] != 99 {
		t.Fatalf("docs %v", specs[0].docs)
	}
	if len(specs[1].docs) != 0 {
		t.Fatalf("peer 1 docs %v", specs[1].docs)
	}
	if len(specs[1].neighbors) != 2 {
		t.Fatalf("peer 1 neighbors %v", specs[1].neighbors)
	}
}

func TestLoadTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "0 127.0.0.1:7000\n",
		"bad id":         "x 127.0.0.1:7000 1\n",
		"negative id":    "-1 127.0.0.1:7000 1\n",
		"bad neighbour":  "0 127.0.0.1:7000 a,b\n",
		"bad doc":        "0 127.0.0.1:7000 1 x\n",
		"duplicate id":   "0 a:1 1\n0 a:2 1\n",
		"empty":          "# nothing\n",
	}
	for name, content := range cases {
		if _, err := loadTopology(writeTopo(t, content)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := loadTopology(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("1,2, 3,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("parsed %v", got)
	}
	if _, err := parseIntList("1,-2"); err == nil {
		t.Fatal("negative must error")
	}
}

func testVocab(t *testing.T) *embed.Vocabulary {
	t.Helper()
	vocab, err := embed.Synthetic(embed.SyntheticParams{
		Words: 100, Dim: 16, Clusters: 10, Spread: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vocab
}

func testSpecs() map[int]peerSpec {
	return map[int]peerSpec{
		0: {addr: "a:1", neighbors: []graph.NodeID{1}, docs: []retrieval.DocID{3, 9}},
		1: {addr: "a:2", neighbors: []graph.NodeID{0, 2}},
		2: {addr: "a:3", neighbors: []graph.NodeID{1}, docs: []retrieval.DocID{7}},
	}
}

func testScorer(t *testing.T, specs map[int]peerSpec, engine string, workers int) *queryScorer {
	t.Helper()
	scorer, err := newQueryScorer(specs, testVocab(t), scorerConfig{
		engine: engine, alpha: 0.5, workers: workers, seed: 42,
		maxBatch: 8, cache: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scorer.Close)
	return scorer
}

func TestEngineFlagReachesRequestDispatcher(t *testing.T) {
	// The -engine value must land in the DiffusionRequest behind every
	// score the live runtime serves.
	for name, want := range map[string]diffuse.Engine{
		"async":    diffuse.EngineAsynchronous,
		"parallel": diffuse.EngineParallel,
		"sync":     diffuse.EngineSync,
	} {
		scorer := testScorer(t, testSpecs(), name, 2)
		if scorer.req.Engine != want {
			t.Fatalf("-engine %s dispatched to %v, want %v", name, scorer.req.Engine, want)
		}
		if scorer.req.Alpha != 0.5 || scorer.req.Workers != 2 || scorer.req.Seed != 42 {
			t.Fatalf("-engine %s request knobs lost: %+v", name, scorer.req)
		}
	}
	if _, err := newQueryScorer(testSpecs(), testVocab(t), scorerConfig{engine: "mailboxes", alpha: 0.5}); err == nil {
		t.Fatal("unknown engine name must error")
	}
}

func TestQueryScorerScoresAndPrewarms(t *testing.T) {
	vocab := testVocab(t)
	scorer := testScorer(t, testSpecs(), "parallel", 1)
	q := vocab.Vector(3)
	scores, err := scorer.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores for %d nodes, want 3", len(scores))
	}
	// Doc 3 lives on peer 0: its host must outrank the empty peer 1.
	if scores[0] <= scores[1] {
		t.Fatalf("host score %g not above empty peer %g", scores[0], scores[1])
	}
	// Prewarm must fill the scheduler cache so live queries skip diffusion.
	queries := [][]float64{vocab.Vector(3), vocab.Vector(7)}
	st, err := scorer.Prewarm(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.ColumnSweeps) != 2 {
		t.Fatalf("prewarm stats %+v", st)
	}
	before := scorer.Stats()
	if _, err := scorer.Score(vocab.Vector(7)); err != nil {
		t.Fatal(err)
	}
	after := scorer.Stats()
	if after.CacheHits != before.CacheHits+1 || after.Batches != before.Batches {
		t.Fatalf("prewarmed query missed the cache: before %v after %v", before, after)
	}
}

func TestNewQueryScorerRejectsUnknownNeighbour(t *testing.T) {
	specs := testSpecs()
	specs[9] = peerSpec{addr: "a:9", neighbors: []graph.NodeID{77}}
	if _, err := newQueryScorer(specs, testVocab(t), scorerConfig{engine: "parallel", alpha: 0.5}); err == nil {
		t.Fatal("neighbour outside the topology must error")
	}
}

func TestQueryScorerPatchFollowsTopologyAndInvalidatesCache(t *testing.T) {
	// The incremental-mirror path: a topology reload with a joined peer
	// must change the scorer's answers without a restart, and cached score
	// columns from the old overlay must not survive.
	vocab := testVocab(t)
	scorer := testScorer(t, testSpecs(), "parallel", 1)
	q := vocab.Vector(3)
	before, err := scorer.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 3 {
		t.Fatalf("scores for %d nodes, want 3", len(before))
	}

	// Peer 3 joins holding doc 12, attached to peer 2 (and 2 gains the
	// back-edge), as a reloaded topology file would describe.
	specs := testSpecs()
	specs[2] = peerSpec{addr: "a:3", neighbors: []graph.NodeID{1, 3}, docs: []retrieval.DocID{7}}
	specs[3] = peerSpec{addr: "a:4", neighbors: []graph.NodeID{2}, docs: []retrieval.DocID{12}}
	if err := scorer.Patch(specs); err != nil {
		t.Fatal(err)
	}

	after, err := scorer.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 4 {
		t.Fatalf("patched scorer covers %d nodes, want 4", len(after))
	}
	st := scorer.Stats()
	// The repeat of q after Patch must have been re-diffused, not served
	// from the invalidated cache.
	if st.CacheHits != 0 {
		t.Fatalf("stale cache served a post-patch query: %v", st)
	}
	if st.Batches < 2 {
		t.Fatalf("patch did not force a fresh diffusion: %v", st)
	}

	// A broken reload (unknown neighbour) must leave the mirror usable.
	bad := testSpecs()
	bad[5] = peerSpec{addr: "a:6", neighbors: []graph.NodeID{99}}
	if err := scorer.Patch(bad); err == nil {
		t.Fatal("invalid specs must fail the patch")
	}
	if again, err := scorer.Score(q); err != nil || len(again) != 4 {
		t.Fatalf("scorer unusable after failed patch: %v %d", err, len(again))
	}
}

func TestParseWordList(t *testing.T) {
	ws, err := parseWordList("w1, w2,,w3", 100)
	if err != nil || len(ws) != 3 || ws[2] != 3 {
		t.Fatalf("parsed %v, %v", ws, err)
	}
	if _, err := parseWordList("w1,w200", 100); err == nil {
		t.Fatal("out-of-range word must error")
	}
	if _, err := parseWordList(",", 100); err == nil {
		t.Fatal("empty list must error")
	}
}

func TestParseWord(t *testing.T) {
	w, err := parseWord("w12", 100)
	if err != nil || w != 12 {
		t.Fatalf("w=%d err=%v", w, err)
	}
	if _, err := parseWord("w100", 100); err == nil {
		t.Fatal("out-of-range must error")
	}
	if _, err := parseWord("nope", 100); err == nil {
		t.Fatal("bad token must error")
	}
}
