package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"strings"

	"diffusearch/internal/core"
	"diffusearch/internal/diffuse"
	"diffusearch/internal/embed"
	"diffusearch/internal/graph"
	"diffusearch/internal/retrieval"
	"diffusearch/internal/serve"
)

func writeTopo(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.txt")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTopology(t *testing.T) {
	path := writeTopo(t, `# comment
0 127.0.0.1:7000 1 12,99
1 127.0.0.1:7001 0,2
2 127.0.0.1:7002 1 7
`)
	specs, err := loadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs %d", len(specs))
	}
	if specs[0].addr != "127.0.0.1:7000" {
		t.Fatalf("addr %q", specs[0].addr)
	}
	if len(specs[0].neighbors) != 1 || specs[0].neighbors[0] != 1 {
		t.Fatalf("neighbors %v", specs[0].neighbors)
	}
	if len(specs[0].docs) != 2 || specs[0].docs[1] != 99 {
		t.Fatalf("docs %v", specs[0].docs)
	}
	if len(specs[1].docs) != 0 {
		t.Fatalf("peer 1 docs %v", specs[1].docs)
	}
	if len(specs[1].neighbors) != 2 {
		t.Fatalf("peer 1 neighbors %v", specs[1].neighbors)
	}
}

func TestLoadTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "0 127.0.0.1:7000\n",
		"bad id":         "x 127.0.0.1:7000 1\n",
		"negative id":    "-1 127.0.0.1:7000 1\n",
		"bad neighbour":  "0 127.0.0.1:7000 a,b\n",
		"bad doc":        "0 127.0.0.1:7000 1 x\n",
		"duplicate id":   "0 a:1 1\n0 a:2 1\n",
		"empty":          "# nothing\n",
	}
	for name, content := range cases {
		if _, err := loadTopology(writeTopo(t, content)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := loadTopology(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("1,2, 3,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("parsed %v", got)
	}
	if _, err := parseIntList("1,-2"); err == nil {
		t.Fatal("negative must error")
	}
}

func testVocab(t *testing.T) *embed.Vocabulary {
	t.Helper()
	vocab, err := embed.Synthetic(embed.SyntheticParams{
		Words: 100, Dim: 16, Clusters: 10, Spread: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vocab
}

func testSpecs() map[int]peerSpec {
	return map[int]peerSpec{
		0: {addr: "a:1", neighbors: []graph.NodeID{1}, docs: []retrieval.DocID{3, 9}},
		1: {addr: "a:2", neighbors: []graph.NodeID{0, 2}},
		2: {addr: "a:3", neighbors: []graph.NodeID{1}, docs: []retrieval.DocID{7}},
	}
}

func testScorer(t *testing.T, specs map[int]peerSpec, engine string, workers int) *queryScorer {
	t.Helper()
	scorer, err := newQueryScorer(specs, testVocab(t), scorerConfig{
		engine: engine, alpha: 0.5, workers: workers, seed: 42,
		maxBatch: 8, cache: 32,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scorer.Close)
	return scorer
}

// localStats snapshots the local tenant's scheduler counters.
func localStats(s *queryScorer) serve.Stats { return s.Stats()[localTenant] }

func TestEngineFlagReachesRequestDispatcher(t *testing.T) {
	// The -engine value must land in the DiffusionRequest behind every
	// score the live runtime serves.
	for name, want := range map[string]diffuse.Engine{
		"async":    diffuse.EngineAsynchronous,
		"parallel": diffuse.EngineParallel,
		"sync":     diffuse.EngineSync,
	} {
		scorer := testScorer(t, testSpecs(), name, 2)
		if scorer.req.Engine != want {
			t.Fatalf("-engine %s dispatched to %v, want %v", name, scorer.req.Engine, want)
		}
		if scorer.req.Alpha != 0.5 || scorer.req.Workers != 2 || scorer.req.Seed != 42 {
			t.Fatalf("-engine %s request knobs lost: %+v", name, scorer.req)
		}
	}
	if _, err := newQueryScorer(testSpecs(), testVocab(t), scorerConfig{engine: "mailboxes", alpha: 0.5}, nil); err == nil {
		t.Fatal("unknown engine name must error")
	}
}

func TestQueryScorerScoresAndPrewarms(t *testing.T) {
	vocab := testVocab(t)
	scorer := testScorer(t, testSpecs(), "parallel", 1)
	q := vocab.Vector(3)
	scores, err := scorer.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores for %d nodes, want 3", len(scores))
	}
	// Doc 3 lives on peer 0: its host must outrank the empty peer 1.
	if scores[0] <= scores[1] {
		t.Fatalf("host score %g not above empty peer %g", scores[0], scores[1])
	}
	// Prewarm must fill the scheduler cache so live queries skip diffusion.
	queries := [][]float64{vocab.Vector(3), vocab.Vector(7)}
	st, err := scorer.Prewarm(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.ColumnSweeps) != 2 {
		t.Fatalf("prewarm stats %+v", st)
	}
	before := localStats(scorer)
	if _, err := scorer.Score(vocab.Vector(7)); err != nil {
		t.Fatal(err)
	}
	after := localStats(scorer)
	if after.CacheHits != before.CacheHits+1 || after.Batches != before.Batches {
		t.Fatalf("prewarmed query missed the cache: before %v after %v", before, after)
	}
}

func TestClassAndDeadlineFlagsReachSubmissions(t *testing.T) {
	// -class bulk and -deadline are per-connection defaults on every Score
	// call: bulk submissions must still resolve (and be accounted as bulk
	// columns), and an already-hopeless deadline must shed, not score.
	vocab := testVocab(t)
	scorer, err := newQueryScorer(testSpecs(), vocab, scorerConfig{
		engine: "parallel", alpha: 0.5, workers: 1, seed: 42,
		maxBatch: 8, cache: 32, class: serve.Bulk, deadline: time.Minute,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scorer.Close)
	if _, err := scorer.Score(vocab.Vector(3)); err != nil {
		t.Fatal(err)
	}
	st := localStats(scorer)
	var bulkCols uint64
	for _, c := range st.ClassHist[serve.Bulk] {
		bulkCols += c
	}
	if bulkCols == 0 {
		t.Fatalf("-class bulk never reached the scheduler: %+v", st.ClassHist)
	}
	// A negative deadline budget puts every submission past its deadline
	// on arrival; the serve layer must shed it.
	hopeless, err := newQueryScorer(testSpecs(), vocab, scorerConfig{
		engine: "parallel", alpha: 0.5, workers: 1, seed: 42,
		maxBatch: 8, deadline: -time.Second,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hopeless.Close)
	if _, err := hopeless.Score(vocab.Vector(3)); !errors.Is(err, serve.ErrDeadlineMissed) {
		t.Fatalf("hopeless deadline returned %v, want ErrDeadlineMissed", err)
	}
	if st := localStats(hopeless); st.DeadlineMissed != 1 {
		t.Fatalf("miss not counted: %+v", st)
	}
}

func TestNewQueryScorerRejectsUnknownNeighbour(t *testing.T) {
	specs := testSpecs()
	specs[9] = peerSpec{addr: "a:9", neighbors: []graph.NodeID{77}}
	if _, err := newQueryScorer(specs, testVocab(t), scorerConfig{engine: "parallel", alpha: 0.5}, nil); err == nil {
		t.Fatal("neighbour outside the topology must error")
	}
}

func TestQueryScorerPatchFollowsTopologyAndInvalidatesCache(t *testing.T) {
	// The incremental-mirror path: a topology reload with a joined peer
	// must change the scorer's answers without a restart, and cached score
	// columns from the old overlay must not survive.
	vocab := testVocab(t)
	scorer := testScorer(t, testSpecs(), "parallel", 1)
	q := vocab.Vector(3)
	before, err := scorer.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 3 {
		t.Fatalf("scores for %d nodes, want 3", len(before))
	}

	// Peer 3 joins holding doc 12, attached to peer 2 (and 2 gains the
	// back-edge), as a reloaded topology file would describe.
	specs := testSpecs()
	specs[2] = peerSpec{addr: "a:3", neighbors: []graph.NodeID{1, 3}, docs: []retrieval.DocID{7}}
	specs[3] = peerSpec{addr: "a:4", neighbors: []graph.NodeID{2}, docs: []retrieval.DocID{12}}
	if _, err := scorer.Patch(specs); err != nil {
		t.Fatal(err)
	}

	after, err := scorer.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 4 {
		t.Fatalf("patched scorer covers %d nodes, want 4", len(after))
	}
	st := localStats(scorer)
	// The repeat of q after Patch must have been re-diffused, not served
	// from the invalidated cache.
	if st.CacheHits != 0 {
		t.Fatalf("stale cache served a post-patch query: %v", st)
	}
	if st.Batches < 2 {
		t.Fatalf("patch did not force a fresh diffusion: %v", st)
	}

	// A broken reload (unknown neighbour) must leave the mirror usable.
	bad := testSpecs()
	bad[5] = peerSpec{addr: "a:6", neighbors: []graph.NodeID{99}}
	if _, err := scorer.Patch(bad); err == nil {
		t.Fatal("invalid specs must fail the patch")
	}
	if again, err := scorer.Score(q); err != nil || len(again) != 4 {
		t.Fatalf("scorer unusable after failed patch: %v %d", err, len(again))
	}
}

// rankedSet is the set view of a ranking (the ranked contract is
// set-exact; within-set order may differ under early stop).
func rankedSet(ids []graph.NodeID) map[graph.NodeID]bool {
	s := make(map[graph.NodeID]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func TestRankQueryExactAndFollowsPatch(t *testing.T) {
	// The -topk serving path end to end: RankQuery must return exactly the
	// full-vector top-k over the document hosts, and a SIGHUP-style
	// topology Patch must re-point the ranker at the fresh mirror so the
	// very next ranking is exact on the new overlay.
	vocab := testVocab(t)
	scorer, err := newQueryScorer(testSpecs(), vocab, scorerConfig{
		engine: "parallel", alpha: 0.5, workers: 1, seed: 42,
		maxBatch: 8, cache: 32, topk: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scorer.Close)
	if scorer.tk == nil {
		t.Fatal("topk config did not attach the ranker")
	}

	check := func(stage string, wantNodes int) {
		t.Helper()
		q := vocab.Vector(3)
		full, err := scorer.Score(q)
		if err != nil {
			t.Fatalf("%s: full-vector score: %v", stage, err)
		}
		if len(full) != wantNodes {
			t.Fatalf("%s: mirror covers %d nodes, want %d", stage, len(full), wantNodes)
		}
		want := core.RankTop(full, scorer.tk.Candidates(), 2)
		got, err := scorer.RankQuery(q, 2)
		if err != nil {
			t.Fatalf("%s: RankQuery: %v", stage, err)
		}
		wantSet, gotSet := rankedSet(want.IDs), rankedSet(got.IDs)
		if len(gotSet) != len(wantSet) {
			t.Fatalf("%s: ranked %v, full-vector top-k %v", stage, got.IDs, want.IDs)
		}
		for id := range wantSet {
			if !gotSet[id] {
				t.Fatalf("%s: ranked %v, full-vector top-k %v", stage, got.IDs, want.IDs)
			}
		}
	}
	check("before patch", 3)
	if st := localStats(scorer); st.RankedScored == 0 {
		t.Fatalf("ranked query not accounted: %+v", st)
	}

	// Peer 3 joins holding doc 12 — the ranker must see both the new
	// topology and the grown candidate set.
	specs := testSpecs()
	specs[2] = peerSpec{addr: "a:3", neighbors: []graph.NodeID{1, 3}, docs: []retrieval.DocID{7}}
	specs[3] = peerSpec{addr: "a:4", neighbors: []graph.NodeID{2}, docs: []retrieval.DocID{12}}
	if _, err := scorer.Patch(specs); err != nil {
		t.Fatal(err)
	}
	if got := len(scorer.tk.Candidates()); got != 3 {
		t.Fatalf("patched candidate set has %d hosts, want 3", got)
	}
	check("after patch", 4)
}

func TestShardedScorerMatchesSingleCSR(t *testing.T) {
	// -shards changes where the mirror diffuses, not what it answers.
	vocab := testVocab(t)
	plain := testScorer(t, testSpecs(), "parallel", 1)
	sharded, err := newQueryScorer(testSpecs(), vocab, scorerConfig{
		engine: "parallel", alpha: 0.5, workers: 1, seed: 42,
		maxBatch: 8, cache: 32, shards: 2, partitioner: graph.RangePartitioner{},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sharded.Close)
	q := vocab.Vector(3)
	a, err := plain.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharded.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sharded mirror differs at node %d: %g vs %g", i, b[i], a[i])
		}
	}
}

func TestMultiTenantScorer(t *testing.T) {
	// Extra -tenants graphs serve through their own schedulers in the same
	// process; the local overlay keeps its identity.
	vocab := testVocab(t)
	other := map[int]peerSpec{
		0: {addr: "b:1", neighbors: []graph.NodeID{1}, docs: []retrieval.DocID{20}},
		1: {addr: "b:2", neighbors: []graph.NodeID{0}},
	}
	scorer, err := newQueryScorer(testSpecs(), vocab, scorerConfig{
		engine: "parallel", alpha: 0.5, workers: 1, seed: 42,
		maxBatch: 8, cache: 32, shards: 2, partitioner: graph.RangePartitioner{},
	}, map[string]map[int]peerSpec{"other": other})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scorer.Close)
	names := scorer.Tenants()
	if len(names) != 2 || names[0] != localTenant || names[1] != "other" {
		t.Fatalf("tenants %v", names)
	}
	if _, err := scorer.Score(vocab.Vector(3)); err != nil {
		t.Fatal(err)
	}
	stats := scorer.Stats()
	if stats[localTenant].Completed != 1 || stats["other"].Completed != 0 {
		t.Fatalf("per-tenant stats wrong: %+v", stats)
	}
}

func TestPatchTargetedInvalidation(t *testing.T) {
	// A one-peer rewire in a larger overlay takes the targeted path: only
	// cached columns touching the patch neighbourhood drop.
	vocab := testVocab(t)
	// A 20-peer ring: patching one far edge leaves a local query's cached
	// column untouched (at α=0.9 the per-hop decay is 0.1·(1/2), so the
	// score mass 9 hops away is ~1e-12, far under the invalidation ε).
	specs := make(map[int]peerSpec)
	const n = 20
	for i := 0; i < n; i++ {
		specs[i] = peerSpec{
			addr:      "a:1",
			neighbors: []graph.NodeID{(i + n - 1) % n, (i + 1) % n},
		}
	}
	s0 := specs[0]
	s0.docs = []retrieval.DocID{3}
	specs[0] = s0
	scorer, err := newQueryScorer(specs, vocab, scorerConfig{
		engine: "parallel", alpha: 0.9, workers: 1, seed: 42, maxBatch: 8, cache: 32,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scorer.Close)
	if _, err := scorer.Score(vocab.Vector(3)); err != nil {
		t.Fatal(err)
	}
	// A pure rewire at the antipode — a chord between peers 10 and 12:
	// closure {9,10,11,12,13}, exactly the small-patch bound of 5.
	patched := make(map[int]peerSpec, n)
	for k, v := range specs {
		patched[k] = v
	}
	p10 := patched[10]
	p10.neighbors = []graph.NodeID{9, 11, 12}
	patched[10] = p10
	p12 := patched[12]
	p12.neighbors = []graph.NodeID{10, 11, 13}
	patched[12] = p12
	note, err := scorer.Patch(patched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "targeted invalidation") {
		t.Fatalf("small rewire took the whole-cache path: %q", note)
	}
	// At alpha 0.9 the diffusion is tight around peer 0's doc, so the
	// cached column has no mass at 9..13 and must survive.
	before := localStats(scorer)
	if _, err := scorer.Score(vocab.Vector(3)); err != nil {
		t.Fatal(err)
	}
	if after := localStats(scorer); after.CacheHits != before.CacheHits+1 {
		t.Fatalf("surviving column not served from cache: before %+v after %+v", before, after)
	}

	// A doc-placement change, however far away, must take the whole-cache
	// path: targeted invalidation cannot see mass a new document creates.
	docPatch := make(map[int]peerSpec, n)
	for k, v := range patched {
		docPatch[k] = v
	}
	d10 := docPatch[10]
	d10.docs = []retrieval.DocID{55}
	docPatch[10] = d10
	note, err = scorer.Patch(docPatch)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "document placement changed") {
		t.Fatalf("doc change took the targeted path: %q", note)
	}
}

func TestChangedClosure(t *testing.T) {
	old := testSpecs()
	same := testSpecs()
	if got, docs := changedClosure(old, same); len(got) != 0 || docs {
		t.Fatalf("identical specs changed %v (docs %v)", got, docs)
	}
	// Reordered neighbour lists are not a change.
	re := testSpecs()
	s1 := re[1]
	s1.neighbors = []graph.NodeID{2, 0}
	re[1] = s1
	if got, docs := changedClosure(old, re); len(got) != 0 || docs {
		t.Fatalf("reordered neighbours changed %v (docs %v)", got, docs)
	}
	// A departed peer marks it and its neighbours — and it held a doc, so
	// the relevance sources moved too.
	gone := testSpecs()
	delete(gone, 2)
	got, docs := changedClosure(old, gone)
	want := []int{1, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("departure closure %v, want %v", got, want)
	}
	if !docs {
		t.Fatal("departure of a doc-holding peer must flag docsChanged")
	}
	// A doc-less rewire does not flag docsChanged.
	rewired := testSpecs()
	s0 := rewired[0]
	s0.neighbors = []graph.NodeID{1, 2}
	rewired[0] = s0
	s2 := rewired[2]
	s2.neighbors = []graph.NodeID{0, 1}
	rewired[2] = s2
	if _, docs := changedClosure(old, rewired); docs {
		t.Fatal("pure rewire flagged docsChanged")
	}
}

func TestLoadTenants(t *testing.T) {
	path := writeTopo(t, "0 a:1 1\n1 a:2 0\n")
	got, err := loadTenants("beta=" + path)
	if err != nil || len(got) != 1 || len(got["beta"]) != 2 {
		t.Fatalf("loadTenants: %v %v", got, err)
	}
	if _, err := loadTenants("nope"); err == nil {
		t.Fatal("missing = must error")
	}
	if _, err := loadTenants("local=" + path); err == nil {
		t.Fatal("reserved name must error")
	}
	if _, err := loadTenants("a=" + path + ",a=" + path); err == nil {
		t.Fatal("duplicate name must error")
	}
	if got, err := loadTenants(""); err != nil || got != nil {
		t.Fatalf("empty flag: %v %v", got, err)
	}
}

func TestParseWordList(t *testing.T) {
	ws, err := parseWordList("w1, w2,,w3", 100)
	if err != nil || len(ws) != 3 || ws[2] != 3 {
		t.Fatalf("parsed %v, %v", ws, err)
	}
	if _, err := parseWordList("w1,w200", 100); err == nil {
		t.Fatal("out-of-range word must error")
	}
	if _, err := parseWordList(",", 100); err == nil {
		t.Fatal("empty list must error")
	}
}

func TestParseWord(t *testing.T) {
	w, err := parseWord("w12", 100)
	if err != nil || w != 12 {
		t.Fatalf("w=%d err=%v", w, err)
	}
	if _, err := parseWord("w100", 100); err == nil {
		t.Fatal("out-of-range must error")
	}
	if _, err := parseWord("nope", 100); err == nil {
		t.Fatal("bad token must error")
	}
}
