package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTopo(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.txt")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTopology(t *testing.T) {
	path := writeTopo(t, `# comment
0 127.0.0.1:7000 1 12,99
1 127.0.0.1:7001 0,2
2 127.0.0.1:7002 1 7
`)
	specs, err := loadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs %d", len(specs))
	}
	if specs[0].addr != "127.0.0.1:7000" {
		t.Fatalf("addr %q", specs[0].addr)
	}
	if len(specs[0].neighbors) != 1 || specs[0].neighbors[0] != 1 {
		t.Fatalf("neighbors %v", specs[0].neighbors)
	}
	if len(specs[0].docs) != 2 || specs[0].docs[1] != 99 {
		t.Fatalf("docs %v", specs[0].docs)
	}
	if len(specs[1].docs) != 0 {
		t.Fatalf("peer 1 docs %v", specs[1].docs)
	}
	if len(specs[1].neighbors) != 2 {
		t.Fatalf("peer 1 neighbors %v", specs[1].neighbors)
	}
}

func TestLoadTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "0 127.0.0.1:7000\n",
		"bad id":         "x 127.0.0.1:7000 1\n",
		"negative id":    "-1 127.0.0.1:7000 1\n",
		"bad neighbour":  "0 127.0.0.1:7000 a,b\n",
		"bad doc":        "0 127.0.0.1:7000 1 x\n",
		"duplicate id":   "0 a:1 1\n0 a:2 1\n",
		"empty":          "# nothing\n",
	}
	for name, content := range cases {
		if _, err := loadTopology(writeTopo(t, content)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := loadTopology(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("1,2, 3,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("parsed %v", got)
	}
	if _, err := parseIntList("1,-2"); err == nil {
		t.Fatal("negative must error")
	}
}

func TestParseWord(t *testing.T) {
	w, err := parseWord("w12", 100)
	if err != nil || w != 12 {
		t.Fatalf("w=%d err=%v", w, err)
	}
	if _, err := parseWord("w100", 100); err == nil {
		t.Fatal("out-of-range must error")
	}
	if _, err := parseWord("nope", 100); err == nil {
		t.Fatal("bad token must error")
	}
}
