// Admin surface for a long-running peer: a telemetry registry fed by the
// diffusion observer and per-tenant query-trace sinks, one status
// snapshot struct behind every reporting surface (/statusz JSON, the
// -statsevery log line, and the shutdown banner render the same fields,
// so text and JSON cannot drift), and the -admin HTTP endpoint serving
// /metrics (Prometheus text), /statusz, /healthz, and /debug/pprof.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"diffusearch/internal/diffuse"
	"diffusearch/internal/peernet"
	"diffusearch/internal/serve"
	"diffusearch/internal/telemetry"
)

// adminTelemetry owns the peer's metrics registry and the hooks that feed
// it: one diffusion observer shared by every dispatched batch (the
// sweep-level convergence profile) and one trace sink per tenant
// scheduler (query resolution paths and stage latencies). It exists only
// when -admin or -statsevery asked for it; every method tolerates a nil
// receiver and returns nil hooks, so the uninstrumented peer carries no
// registry at all — not even dormant counters.
type adminTelemetry struct {
	reg  *telemetry.Registry
	diff *telemetry.DiffusionMetrics
}

func newAdminTelemetry() *adminTelemetry {
	reg := telemetry.New()
	return &adminTelemetry{reg: reg, diff: telemetry.NewDiffusionMetrics(reg)}
}

// observer returns the sweep-level diffusion observer to thread into the
// scorer's DiffusionRequest, or nil without telemetry.
func (a *adminTelemetry) observer() diffuse.Observer {
	if a == nil {
		return nil
	}
	return a.diff
}

// traceWindow bounds the per-tenant latency sample rings the summary
// quantiles are computed over, mirroring the serve package's own
// sliding-window philosophy: recent behaviour, not lifetime averages.
const traceWindow = 1024

// sink builds the serve.Config.OnTrace hook for one tenant's scheduler:
// per-path resolution counters, wait/score latency quantile windows, and
// — when the tenant scores through the walk index — warm/cold finish
// attribution (a scored batch reporting zero sweeps was answered entirely
// from precomputed segments; any residual finish diffuses at least one).
func (a *adminTelemetry) sink(tenant string, walkindexBacked bool) func(serve.Trace) {
	if a == nil {
		return nil
	}
	paths := make(map[serve.Path]*telemetry.Counter, len(serve.Paths))
	for _, p := range serve.Paths {
		paths[p] = a.reg.Counter("diffusearch_serve_queries_total",
			"Resolved query submissions by resolution path.",
			"tenant", tenant, "path", string(p))
	}
	wait := a.reg.Window("diffusearch_serve_wait_seconds",
		"Coalescing wait (arrival to dispatch) of resolved queries.",
		traceWindow, "tenant", tenant)
	score := a.reg.Window("diffusearch_serve_score_seconds",
		"Backend scoring time of the batch each query rode.",
		traceWindow, "tenant", tenant)
	var warm, cold *telemetry.Counter
	if walkindexBacked {
		const help = "Scored batches by walk-index finish kind: warm " +
			"batches were answered entirely from precomputed segments " +
			"(zero diffusion sweeps), cold ones needed a residual finish."
		warm = a.reg.Counter("diffusearch_walkindex_finishes_total", help,
			"tenant", tenant, "kind", "warm")
		cold = a.reg.Counter("diffusearch_walkindex_finishes_total", help,
			"tenant", tenant, "kind", "cold")
	}
	return func(t serve.Trace) {
		if c := paths[t.Path]; c != nil {
			c.Inc()
		}
		if t.Wait > 0 {
			wait.Observe(t.Wait.Seconds())
		}
		if t.Score > 0 {
			score.Observe(t.Score.Seconds())
		}
		if warm != nil && t.Path == serve.PathScored {
			if t.Sweeps == 0 {
				warm.Inc()
			} else {
				cold.Inc()
			}
		}
	}
}

// registerPeer exposes the transport-level gossip counters. They live in
// the peer, not the registry, so a Producer reads them at scrape time.
func (a *adminTelemetry) registerPeer(peer *peernet.Peer) {
	if a == nil {
		return
	}
	a.reg.Producer(func(e *telemetry.Emitter) {
		updates, messages := peer.Stats()
		e.Counter("diffusearch_peer_diffusion_updates_total",
			"Gossip diffusion updates applied by this peer.", float64(updates))
		e.Counter("diffusearch_peer_messages_sent_total",
			"Transport messages sent by this peer.", float64(messages))
		fs := peer.FilterStats()
		if !fs.Enabled {
			return
		}
		e.Gauge("diffusearch_filter_fill_ratio",
			"Saturation of this peer's gossiped bloom document summary.", fs.Fill)
		e.Gauge("diffusearch_filter_neighbors_cached",
			"Neighbour bloom summaries currently cached.", float64(fs.Cached))
		e.Gauge("diffusearch_filter_neighbors_stale",
			"Cached neighbour summaries awaiting re-proof after a topology change.", float64(fs.Stale))
		e.Counter("diffusearch_filter_routed_hits_total",
			"Query forwards steered by a neighbour filter hit.", float64(fs.Hits))
		e.Counter("diffusearch_filter_routed_fallbacks_total",
			"Query forwards that fell back to plain greedy (every candidate missed).", float64(fs.Misses))
		e.Counter("diffusearch_filter_routed_early_stops_total",
			"Queries answered locally because no fresh filter could extend the walk.", float64(fs.Stops))
	})
}

// registerScorer exposes the serving-side gauges: per-tenant scheduler
// state, the shared worker pool, and the memory-bounded stores (walk
// index and reverse top-k tables). All of them are owned by the scorer
// and sampled at scrape time, so the hot path pays nothing for them.
func (a *adminTelemetry) registerScorer(s *queryScorer) {
	if a == nil || s == nil {
		return
	}
	if s.pool != nil {
		a.reg.GaugeFunc("diffusearch_pool_workers",
			"Shared diffusion worker pool size.",
			func() float64 { return float64(s.pool.Workers()) })
	}
	if s.wix != nil {
		a.reg.GaugeFunc("diffusearch_walkindex_store_bytes",
			"Walk-index segment store payload size.",
			func() float64 { return float64(s.wix.StoreBytes()) })
		a.reg.GaugeFunc("diffusearch_walkindex_coverage",
			"Built fraction of the walk-index seed set in [0,1].",
			s.wix.Coverage)
		a.reg.GaugeFunc("diffusearch_walkindex_segments",
			"Built walk-index segments.",
			func() float64 { return float64(s.wix.Segments()) })
		a.reg.GaugeFunc("diffusearch_walkindex_poisoned_segments",
			"Built segments whose error certificate a topology patch "+
				"poisoned; persistently non-zero means rebuilds lag patches.",
			func() float64 { return float64(s.wix.Poisoned()) })
		a.reg.GaugeFunc("diffusearch_walkindex_saturated",
			"1 when the store is pinned at its byte budget with seeds "+
				"still unbuilt, 0 otherwise.",
			func() float64 {
				if s.wix.Saturated() {
					return 1
				}
				return 0
			})
	}
	if s.tk != nil {
		a.reg.GaugeFunc("diffusearch_topk_tables",
			"Built reverse-push top-k tables.",
			func() float64 { return float64(s.tk.Tables()) })
		a.reg.GaugeFunc("diffusearch_topk_candidates",
			"Candidate set size of the certified top-k ranker.",
			func() float64 { return float64(len(s.tk.Candidates())) })
		a.reg.GaugeFunc("diffusearch_topk_store_bytes",
			"Reverse-table store payload size.",
			func() float64 { return float64(s.tk.StoreBytes()) })
		a.reg.GaugeFunc("diffusearch_topk_poisoned_tables",
			"Reverse tables running without early-stop certificates "+
				"after a topology patch.",
			func() float64 { return float64(s.tk.Poisoned()) })
	}
	a.reg.Producer(func(e *telemetry.Emitter) {
		for name, st := range s.Stats() {
			e.Gauge("diffusearch_serve_queue_depth",
				"Submission-queue occupancy at scrape time.",
				float64(st.QueueDepth), "tenant", name)
			e.Gauge("diffusearch_serve_cache_bytes",
				"Live LRU score-cache payload size.",
				float64(st.CacheBytes), "tenant", name)
			e.Counter("diffusearch_serve_batches_total",
				"Diffusions dispatched by the scheduler.",
				float64(st.Batches), "tenant", name)
			e.Counter("diffusearch_serve_messages_total",
				"Embedding messages spent by dispatched batches.",
				float64(st.MessagesTotal), "tenant", name)
			e.Counter("diffusearch_serve_cross_messages_total",
				"Cross-shard subset of the dispatched batches' messages.",
				float64(st.CrossMessagesTotal), "tenant", name)
		}
	})
}

// statusSnapshot is the one status structure behind every reporting
// surface. /statusz marshals it; text renders the shutdown banner and
// the -statsevery log line from the same fields.
type statusSnapshot struct {
	Peer        int                    `json:"peer"`
	UptimeSecs  float64                `json:"uptime_secs"`
	Updates     int64                  `json:"diffusion_updates"`
	Messages    int64                  `json:"messages_sent"`
	PoolWorkers int                    `json:"pool_workers,omitempty"`
	Schedulers  map[string]serve.Stats `json:"schedulers,omitempty"`
	Filter      *peernet.FilterStats   `json:"filter,omitempty"`
	WalkIndex   *walkIndexStatus       `json:"walkindex,omitempty"`
	TopK        *topKStatus            `json:"topk,omitempty"`
}

type walkIndexStatus struct {
	Segments   int     `json:"segments"`
	Seeds      int     `json:"seeds"`
	Coverage   float64 `json:"coverage"`
	StoreBytes int64   `json:"store_bytes"`
	Poisoned   int     `json:"poisoned"`
	Saturated  bool    `json:"saturated"`
}

type topKStatus struct {
	Tables     int   `json:"tables"`
	Candidates int   `json:"candidates"`
	StoreBytes int64 `json:"store_bytes"`
	Poisoned   int   `json:"poisoned"`
}

// statusSource binds the live objects a snapshot reads from. scorer is
// nil for a gossip-only peer (no -engine).
type statusSource struct {
	id     int
	start  time.Time
	peer   *peernet.Peer
	scorer *queryScorer
}

func (src statusSource) snapshot() statusSnapshot {
	updates, messages := src.peer.Stats()
	sn := statusSnapshot{
		Peer:       src.id,
		UptimeSecs: time.Since(src.start).Seconds(),
		Updates:    updates,
		Messages:   messages,
	}
	if fs := src.peer.FilterStats(); fs.Enabled {
		sn.Filter = &fs
	}
	s := src.scorer
	if s == nil {
		return sn
	}
	sn.Schedulers = s.Stats()
	if s.pool != nil {
		sn.PoolWorkers = s.pool.Workers()
	}
	if s.wix != nil {
		sn.WalkIndex = &walkIndexStatus{
			Segments: s.wix.Segments(), Seeds: s.wix.SeedCount(),
			Coverage: s.wix.Coverage(), StoreBytes: s.wix.StoreBytes(),
			Poisoned: s.wix.Poisoned(), Saturated: s.wix.Saturated(),
		}
	}
	if s.tk != nil {
		sn.TopK = &topKStatus{
			Tables: s.tk.Tables(), Candidates: len(s.tk.Candidates()),
			StoreBytes: s.tk.StoreBytes(), Poisoned: s.tk.Poisoned(),
		}
	}
	return sn
}

// text renders the snapshot for logs: one header line plus one line per
// scheduler and store, tenants in sorted order for stable output.
func (sn statusSnapshot) text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "peer %d up %s: %d diffusion updates, %d messages sent\n",
		sn.Peer, (time.Duration(sn.UptimeSecs * float64(time.Second))).Round(time.Second),
		sn.Updates, sn.Messages)
	names := make([]string, 0, len(sn.Schedulers))
	for name := range sn.Schedulers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "scheduler[%s]: %v\n", name, sn.Schedulers[name])
	}
	if f := sn.Filter; f != nil {
		fmt.Fprintf(&b, "filter: %d bits × %d hashes, %.0f%% full, %d neighbours cached (%d stale), routed %d hits / %d fallbacks / %d early stops\n",
			f.Bits, f.Hashes, 100*f.Fill, f.Cached, f.Stale, f.Hits, f.Misses, f.Stops)
	}
	if w := sn.WalkIndex; w != nil {
		fmt.Fprintf(&b, "walkindex: %d/%d segments (%.0f%% coverage), %d bytes",
			w.Segments, w.Seeds, 100*w.Coverage, w.StoreBytes)
		if w.Poisoned > 0 {
			fmt.Fprintf(&b, ", %d poisoned", w.Poisoned)
		}
		if w.Saturated {
			b.WriteString(", saturated")
		}
		b.WriteByte('\n')
	}
	if t := sn.TopK; t != nil {
		fmt.Fprintf(&b, "topk: %d/%d reverse tables, %d bytes",
			t.Tables, t.Candidates, t.StoreBytes)
		if t.Poisoned > 0 {
			fmt.Fprintf(&b, ", %d poisoned", t.Poisoned)
		}
		b.WriteByte('\n')
	}
	if sn.PoolWorkers > 0 {
		fmt.Fprintf(&b, "pool: %d workers\n", sn.PoolWorkers)
	}
	return b.String()
}

// newAdminMux assembles the admin surface: Prometheus metrics, the JSON
// status snapshot, a liveness probe, and the stock pprof profiles. pprof
// is mounted explicitly rather than via the package's DefaultServeMux
// side effect, so the main service ports never grow debug handlers.
func newAdminMux(reg *telemetry.Registry, snap func() statusSnapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startAdmin binds addr and serves the admin mux until the returned
// server is closed. The resolved address is returned so ":0" works in
// tests and logs print something dialable.
func startAdmin(addr string, mux *http.ServeMux) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("admin endpoint: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// startStatsLoop prints the status snapshot every interval until the
// returned stop function is called — the log-line twin of /statusz.
func startStatsLoop(every time.Duration, snap func() statusSnapshot) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Print(snap().text())
			}
		}
	}()
	return func() { close(done) }
}
