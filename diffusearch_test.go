package diffusearch_test

import (
	"context"
	"testing"

	"diffusearch"
)

// TestPublicAPIEndToEnd drives the whole pipeline exactly as the package
// documentation advertises.
func TestPublicAPIEndToEnd(t *testing.T) {
	env, err := diffusearch.NewScaledEnvironment(42, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	net := diffusearch.NewNetwork(env.Graph, env.Bench.Vocabulary())
	r := diffusearch.NewRand(42)
	pair := env.Bench.SamplePair(r)
	docs := append([]diffusearch.DocID{pair.Gold}, env.Bench.SamplePool(r, 49)...)
	if err := net.PlaceDocuments(docs, diffusearch.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
		t.Fatal(err)
	}
	if err := net.ComputePersonalization(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(diffusearch.DiffusionRequest{Alpha: 0.5, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	query := env.Bench.Vocabulary().Vector(pair.Query)
	out, err := net.RunQuery(net.HostOf(pair.Gold), query, pair.Gold, diffusearch.QueryConfig{TTL: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || out.HopsToGold != 0 {
		t.Fatalf("local query must find the gold immediately: %+v", out)
	}
	// Batch scoring through the same request API, as the package docs
	// advertise: per-query score slices drive walks via QueryConfig.Scores.
	scores, st, err := net.ScoreBatch([][]float64{query, query}, diffusearch.DiffusionRequest{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 || len(st.ColumnSweeps) != 2 {
		t.Fatalf("batch scoring shape: %d slices, stats %+v", len(scores), st)
	}
	shared, err := net.RunQuery(net.HostOf(pair.Gold), query, pair.Gold,
		diffusearch.QueryConfig{TTL: 50, Scores: scores[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Found {
		t.Fatalf("batch-scored walk must find the local gold: %+v", shared)
	}
}

// TestShardedFacadeEndToEnd drives the sharded multi-tenant surface as the
// package documentation advertises: a ShardedNetwork answers the same
// request API within 1e-9 of the single CSR, and a MultiScheduler serves
// two tenants over one shared pool.
func TestShardedFacadeEndToEnd(t *testing.T) {
	env, err := diffusearch.NewScaledEnvironment(42, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	build := func(n interface {
		PlaceDocuments([]diffusearch.DocID, []diffusearch.NodeID) error
		ComputePersonalization() error
	}) []float64 {
		r := diffusearch.NewRand(42)
		pair := env.Bench.SamplePair(r)
		docs := append([]diffusearch.DocID{pair.Gold}, env.Bench.SamplePool(r, 49)...)
		if err := n.PlaceDocuments(docs, diffusearch.UniformHosts(r, len(docs), env.Graph.NumNodes())); err != nil {
			t.Fatal(err)
		}
		if err := n.ComputePersonalization(); err != nil {
			t.Fatal(err)
		}
		return env.Bench.Vocabulary().Vector(pair.Query)
	}
	plain := diffusearch.NewNetwork(env.Graph, env.Bench.Vocabulary())
	query := build(plain)

	pool := diffusearch.NewDiffusionPool(2)
	defer pool.Close()
	sharded := diffusearch.NewSharded(env.Graph, env.Bench.Vocabulary(),
		diffusearch.ShardConfig{Shards: 3, Partitioner: diffusearch.GreedyPartitioner{}, Pool: pool})
	build(sharded)

	req := diffusearch.DiffusionRequest{Alpha: 0.5, Tenant: "alpha"}
	want, _, err := plain.ScoreBatch([][]float64{query}, req)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := sharded.ScoreBatch([][]float64{query}, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		d := got[0][i] - want[0][i]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("sharded facade diverges at node %d: %g vs %g", i, got[0][i], want[0][i])
		}
	}
	if st.CrossMessages == 0 {
		t.Fatal("3-shard diffusion reported no cross-shard traffic")
	}

	multi := diffusearch.NewMultiScheduler()
	defer multi.Close()
	if _, err := multi.Register("alpha", sharded, diffusearch.ServeConfig{
		Request: diffusearch.DiffusionRequest{Alpha: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := multi.Register("beta", plain, diffusearch.ServeConfig{
		Request: diffusearch.DiffusionRequest{Alpha: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := multi.Submit(ctx, "alpha", query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := multi.Submit(ctx, "beta", query)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != env.Graph.NumNodes() {
		t.Fatalf("tenant score shapes: %d vs %d", len(a), len(b))
	}
}

func TestNewSocialGraphStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale graph generation")
	}
	g := diffusearch.NewSocialGraph(1)
	if g.NumNodes() != 4039 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	if g.AverageDegree() < 35 || g.AverageDegree() > 53 {
		t.Fatalf("avg degree %.1f", g.AverageDegree())
	}
}

func TestNewVocabularyAndWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale vocabulary generation")
	}
	v, err := diffusearch.NewVocabulary(2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 15000 || v.Dim() != 300 {
		t.Fatalf("vocabulary %dx%d", v.Len(), v.Dim())
	}
	b, err := diffusearch.MineWorkload(v, 100, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Pairs) != 100 {
		t.Fatalf("pairs %d", len(b.Pairs))
	}
}

func TestPolicyTypesAreUsable(t *testing.T) {
	var p diffusearch.Policy = diffusearch.GreedyPolicy{Fanout: 2}
	if p.Name() != "greedy" {
		t.Fatal("policy re-export broken")
	}
	if diffusearch.VisitedNodeMemory.String() != "node-memory" {
		t.Fatal("visited-mode re-export broken")
	}
}
